// Package topo generates parameterized node deployments: where the
// scenario registry holds a handful of hand-built layouts (the Fig. 3
// trio, the Fig. 4 downlink), topo mass-produces them — uniform-disk
// or grid placement, a configurable mix of 1/2/3-antenna radios, and
// either ad-hoc nearest-neighbor pairing or AP-uplink association.
// Generators emit the same Node/Link slices the scenario registry
// produces (package core aliases these types), plus explicit node
// positions that the testbed deploys verbatim, so a generated 200-node
// network runs through exactly the same channel/MAC stack as the
// hand-built ones.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"nplus/internal/knob"
	"nplus/internal/mac"
	"nplus/internal/testbed"
)

// Node describes one radio. This is the canonical definition; package
// core aliases it so hand-built scenarios and generated topologies
// share one vocabulary.
type Node struct {
	ID       mac.NodeID
	Antennas int
}

// Link is a backlogged or open-loop traffic flow between two nodes.
type Link struct {
	ID     int
	Tx, Rx mac.NodeID
}

// Layout is one generated deployment: the node/link description plus
// explicit positions in meters. Positions are what make generated
// topologies geometric — the testbed deploys them verbatim instead of
// shuffling nodes onto its fixed floor plan. Clustered generators
// additionally record the cell structure and the link model the
// deployment should be synthesized under.
type Layout struct {
	Nodes     []Node
	Links     []Link
	Positions map[mac.NodeID]testbed.Point

	// Clusters is the number of spatial cells (0 for unclustered
	// layouts); ClusterOf maps each node to its cell.
	Clusters  int
	ClusterOf map[mac.NodeID]int
	// InterClusterLossDB is the resolved extra attenuation applied to
	// every link crossing cell boundaries (walls, building shells).
	InterClusterLossDB float64
	// SparseSNRDB is the recommended channel-materialization floor for
	// this layout (0 = dense): clustered deployments skip the
	// quadratic bulk of far-below-noise cross-cell channels.
	SparseSNRDB float64

	// Cells records the geometry of each spatial cell — the disk a
	// mobility model confines or hops between, and the region dynamic
	// arrivals are placed in. Clustered generators emit one per
	// cluster (indexed like ClusterOf); single-cell generators emit
	// one covering disk.
	Cells []Cell
}

// Cell is one spatial cell's covering disk.
type Cell struct {
	Center  testbed.Point
	RadiusM float64
}

// UniformIn samples a uniform point in the cell's disk.
func (c Cell) UniformIn(rng *rand.Rand) testbed.Point {
	r := c.RadiusM * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return testbed.Point{X: c.Center.X + r*math.Cos(theta), Y: c.Center.Y + r*math.Sin(theta)}
}

// NearestCell returns the index of the cell whose center is closest
// to p (0 when the layout records no cells).
func (l *Layout) NearestCell(p testbed.Point) int {
	best, bestDist := 0, math.Inf(1)
	for i, c := range l.Cells {
		if d := p.Distance(c.Center); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// ExtraLossDB returns the layout's per-ordered-pair extra attenuation
// function for the testbed link model, or nil when the layout has no
// cluster structure or no loss.
func (l *Layout) ExtraLossDB() func(a, b mac.NodeID) float64 {
	if l.ClusterOf == nil || l.InterClusterLossDB == 0 {
		return nil
	}
	loss := l.InterClusterLossDB
	cells := l.ClusterOf
	return func(a, b mac.NodeID) float64 {
		if cells[a] == cells[b] {
			return 0
		}
		return loss
	}
}

// GenConfig parameterizes a generator. Zero values select calibrated
// defaults.
type GenConfig struct {
	// Nodes is the total number of radios to place (default 50).
	Nodes int
	// AreaPerNode sets the deployment density in m² per node (default
	// 30, matching the hand-built testbed's 600 m² for 20 locations).
	// The disk radius and grid pitch both derive from it.
	AreaPerNode float64
	// MinSpacing is the minimum distance between radios in meters
	// (default 1) — co-located radios would see unphysical path gains.
	MinSpacing float64
	// Mix is the fraction of 1-, 2-, and 3-antenna radios among
	// non-AP nodes (default an even third each). It is normalized, so
	// {1, 1, 2} means half the radios have 3 antennas.
	Mix [3]float64
	// APFraction is, for uplink generators, the fraction of nodes that
	// are access points (default 0.1, at least one).
	APFraction float64
	// APAntennas is the AP antenna count for uplink generators
	// (default 3 — the heterogeneity gradient the paper studies points
	// from 1-antenna clients up to multi-antenna APs).
	APAntennas int

	// Clusters is the number of spatial cells for clustered generators
	// (campus buildings, multiroom rooms); 0 selects 4. Non-clustered
	// generators reject values above 1 rather than silently ignoring
	// them.
	Clusters int
	// InterClusterLossDB is the extra attenuation in dB applied to
	// every link crossing cell boundaries. Auto (NaN) selects the
	// generator's calibrated default (60 for campus building shells,
	// 15 for multiroom walls); explicit values — including 0, meaning
	// geometry-only isolation — are taken as given. The zero value of
	// GenConfig therefore means literally no extra loss, mirroring
	// core.Options' sentinel convention.
	InterClusterLossDB float64
	// ClusterGapM is the spacing between adjacent cluster centers in
	// meters; 0 derives it from the cluster radius (campus: far enough
	// that buildings fall below any sane carrier-sense threshold on
	// distance alone; multiroom: adjacent rooms).
	ClusterGapM float64
}

// Auto marks a GenConfig float field as "use the generator's
// calibrated default" (knob.Auto — the one shared NaN sentinel).
var Auto = knob.Auto

func (c GenConfig) withDefaults() GenConfig {
	if c.Nodes == 0 {
		c.Nodes = 50
	}
	if c.AreaPerNode == 0 {
		c.AreaPerNode = 30
	}
	if c.MinSpacing == 0 {
		c.MinSpacing = 1
	}
	if c.Mix == [3]float64{} {
		c.Mix = [3]float64{1, 1, 1}
	}
	if c.APFraction == 0 {
		c.APFraction = 0.1
	}
	if c.APAntennas == 0 {
		c.APAntennas = 3
	}
	return c
}

// Validate rejects unusable parameter combinations.
func (c GenConfig) Validate() error {
	c = c.withDefaults()
	if c.Nodes < 2 {
		return fmt.Errorf("topo: %d nodes (need at least a pair)", c.Nodes)
	}
	if c.AreaPerNode <= 0 || c.MinSpacing < 0 {
		return fmt.Errorf("topo: bad geometry (area/node %g, spacing %g)", c.AreaPerNode, c.MinSpacing)
	}
	if c.Mix[0] < 0 || c.Mix[1] < 0 || c.Mix[2] < 0 || c.Mix[0]+c.Mix[1]+c.Mix[2] == 0 {
		return fmt.Errorf("topo: bad antenna mix %v", c.Mix)
	}
	if c.APFraction < 0 || c.APFraction >= 1 {
		return fmt.Errorf("topo: AP fraction %g outside [0, 1)", c.APFraction)
	}
	if c.APAntennas < 1 {
		return fmt.Errorf("topo: %d AP antennas", c.APAntennas)
	}
	if c.Clusters < 0 {
		return fmt.Errorf("topo: %d clusters", c.Clusters)
	}
	if !knob.IsAuto(c.InterClusterLossDB) && c.InterClusterLossDB < 0 {
		return fmt.Errorf("topo: inter-cluster loss %g dB is negative (a cross-cell gain)", c.InterClusterLossDB)
	}
	if c.ClusterGapM < 0 {
		return fmt.Errorf("topo: cluster gap %g m is negative", c.ClusterGapM)
	}
	return nil
}

// antennaCounts converts the mix fractions into an exact multiset of
// n antenna counts (largest-remainder rounding), shuffled by rng so
// antenna classes are not spatially correlated with generation order.
func antennaCounts(rng *rand.Rand, mix [3]float64, n int) []int {
	total := mix[0] + mix[1] + mix[2]
	counts := [3]int{}
	assigned := 0
	rems := [3]float64{}
	for i := 0; i < 3; i++ {
		exact := mix[i] / total * float64(n)
		counts[i] = int(math.Floor(exact))
		rems[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < 3; i++ {
			if rems[i] > rems[best] {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		assigned++
	}
	out := make([]int, 0, n)
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out = append(out, i+1)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// placeDisk samples n points uniformly in a disk sized for the
// configured density, rejecting points closer than MinSpacing to an
// accepted one (with a bounded retry budget, after which the spacing
// constraint is relaxed — density always wins over spacing).
func placeDisk(rng *rand.Rand, cfg GenConfig, n int) []testbed.Point {
	radius := math.Sqrt(cfg.AreaPerNode * float64(n) / math.Pi)
	pts := make([]testbed.Point, 0, n)
	const maxTries = 200
	for len(pts) < n {
		var p testbed.Point
		ok := false
		for try := 0; try < maxTries; try++ {
			r := radius * math.Sqrt(rng.Float64())
			theta := 2 * math.Pi * rng.Float64()
			p = testbed.Point{X: radius + r*math.Cos(theta), Y: radius + r*math.Sin(theta)}
			ok = true
			for _, q := range pts {
				if p.Distance(q) < cfg.MinSpacing {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		pts = append(pts, p) // spacing-relaxed point if the budget ran out
	}
	return pts
}

// placeGrid lays n points on a square grid whose pitch matches the
// configured density.
func placeGrid(rng *rand.Rand, cfg GenConfig, n int) []testbed.Point {
	pitch := math.Sqrt(cfg.AreaPerNode)
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]testbed.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, testbed.Point{
			X: float64(i%cols) * pitch,
			Y: float64(i/cols) * pitch,
		})
	}
	return pts
}

// pairAdhoc pairs radios with their nearest unpaired neighbor: each
// pass the lowest-ID unpaired node becomes a transmitter and links to
// the closest remaining node. An odd leftover node is dropped —
// a radio with no flow is dead weight in every experiment.
func pairAdhoc(rng *rand.Rand, cfg GenConfig, pts []testbed.Point) (*Layout, error) {
	n := len(pts)
	ants := antennaCounts(rng, cfg.Mix, n)
	l := &Layout{Positions: make(map[mac.NodeID]testbed.Point, n)}
	for i := 0; i < n; i++ {
		id := mac.NodeID(i + 1)
		l.Nodes = append(l.Nodes, Node{ID: id, Antennas: ants[i]})
		l.Positions[id] = pts[i]
	}
	paired := make([]bool, n)
	flow := 0
	for i := 0; i < n; i++ {
		if paired[i] {
			continue
		}
		best, bestDist := -1, math.Inf(1)
		for j := i + 1; j < n; j++ {
			if paired[j] {
				continue
			}
			if d := pts[i].Distance(pts[j]); d < bestDist {
				best, bestDist = j, d
			}
		}
		if best < 0 {
			break // odd leftover; removed below
		}
		paired[i], paired[best] = true, true
		flow++
		l.Links = append(l.Links, Link{ID: flow, Tx: mac.NodeID(i + 1), Rx: mac.NodeID(best + 1)})
	}
	// Drop any node that ended up unpaired (at most one).
	kept := l.Nodes[:0]
	for i, nd := range l.Nodes {
		if paired[i] {
			kept = append(kept, nd)
		} else {
			delete(l.Positions, nd.ID)
		}
	}
	l.Nodes = kept
	if len(l.Links) == 0 {
		return nil, fmt.Errorf("topo: ad-hoc pairing produced no links from %d nodes", n)
	}
	return l, nil
}

// pairUplink designates the first K placed points as access points
// with APAntennas each; the remaining radios are clients drawn from
// the antenna mix, each transmitting uplink to its nearest AP.
func pairUplink(rng *rand.Rand, cfg GenConfig, pts []testbed.Point) (*Layout, error) {
	n := len(pts)
	aps := int(math.Round(cfg.APFraction * float64(n)))
	if aps < 1 {
		aps = 1
	}
	if aps >= n {
		return nil, fmt.Errorf("topo: %d APs leave no clients among %d nodes", aps, n)
	}
	isAP := chooseAPs(pts, aps)
	ants := antennaCounts(rng, cfg.Mix, n-aps)
	l := &Layout{Positions: make(map[mac.NodeID]testbed.Point, n)}
	ci := 0
	var apIDs []mac.NodeID
	for i := 0; i < n; i++ {
		id := mac.NodeID(i + 1)
		a := cfg.APAntennas
		if !isAP[i] {
			a = ants[ci]
			ci++
		} else {
			apIDs = append(apIDs, id)
		}
		l.Nodes = append(l.Nodes, Node{ID: id, Antennas: a})
		l.Positions[id] = pts[i]
	}
	flow := 0
	for i := 0; i < n; i++ {
		if isAP[i] {
			continue
		}
		id := mac.NodeID(i + 1)
		best, bestDist := mac.NodeID(0), math.Inf(1)
		for _, ap := range apIDs {
			if d := l.Positions[id].Distance(l.Positions[ap]); d < bestDist {
				best, bestDist = ap, d
			}
		}
		flow++
		l.Links = append(l.Links, Link{ID: flow, Tx: id, Rx: best})
	}
	return l, nil
}

// chooseAPs marks ap point indices spread over the placement
// geometry — greedy k-center: start from the point nearest the
// centroid, then repeatedly take the point farthest from every AP
// chosen so far. Index striding would not work: grid placements emit
// points in row-major order, so a stride that divides the column
// count stacks every AP into a single column.
func chooseAPs(pts []testbed.Point, aps int) []bool {
	n := len(pts)
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	center := testbed.Point{X: cx / float64(n), Y: cy / float64(n)}
	first, bestDist := 0, math.Inf(1)
	for i, p := range pts {
		if d := p.Distance(center); d < bestDist {
			first, bestDist = i, d
		}
	}
	isAP := make([]bool, n)
	isAP[first] = true
	// minDist[i]: distance from point i to its nearest chosen AP.
	minDist := make([]float64, n)
	for i, p := range pts {
		minDist[i] = p.Distance(pts[first])
	}
	for k := 1; k < aps; k++ {
		next, far := -1, -1.0
		for i, d := range minDist {
			if !isAP[i] && d > far {
				next, far = i, d
			}
		}
		isAP[next] = true
		for i, p := range pts {
			if d := p.Distance(pts[next]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return isAP
}

// generate composes a placement with a pairing (single-cell
// generators; cluster knobs are rejected rather than silently
// ignored).
func generate(place func(*rand.Rand, GenConfig, int) []testbed.Point,
	pair func(*rand.Rand, GenConfig, []testbed.Point) (*Layout, error)) func(GenConfig, *rand.Rand) (*Layout, error) {
	return func(cfg GenConfig, rng *rand.Rand) (*Layout, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if cfg.Clusters > 1 || cfg.ClusterGapM != 0 || (!knob.IsAuto(cfg.InterClusterLossDB) && cfg.InterClusterLossDB != 0) {
			return nil, fmt.Errorf("topo: cluster geometry is a clustered-generator knob (use campus or multiroom)")
		}
		cfg = cfg.withDefaults()
		l, err := pair(rng, cfg, place(rng, cfg, cfg.Nodes))
		if err != nil {
			return nil, err
		}
		l.Cells = []Cell{coveringCell(l)}
		return l, nil
	}
}

// coveringCell returns the smallest centroid-centered disk holding
// every position (with a 1 m floor so degenerate layouts still give
// mobility room to move). It accumulates in node order — float sums
// are order-sensitive, and layouts must be bit-deterministic per seed.
func coveringCell(l *Layout) Cell {
	var cx, cy float64
	for _, nd := range l.Nodes {
		p := l.Positions[nd.ID]
		cx += p.X
		cy += p.Y
	}
	n := float64(len(l.Nodes))
	c := Cell{Center: testbed.Point{X: cx / n, Y: cy / n}, RadiusM: 1}
	for _, nd := range l.Nodes {
		if d := l.Positions[nd.ID].Distance(c.Center); d > c.RadiusM {
			c.RadiusM = d
		}
	}
	return c
}

// clusterShape fixes one clustered generator's calibrated geometry:
// its default wall/shell attenuation, how cluster centers space out
// relative to the cluster radius, a spacing floor in meters, and the
// channel-materialization floor its layouts recommend.
type clusterShape struct {
	defLossDB   float64
	gapFactor   float64
	minGapM     float64
	sparseSNRDB float64
	// evenCells rebalances cell sizes to even counts where possible:
	// ad-hoc pairing drops an odd leftover per cell, so without this a
	// 4-cell layout could silently shed up to 4 nodes.
	evenCells bool
}

// generateClustered builds a clustered generator: Clusters cells laid
// out on a grid of centers, each cell placed and paired independently
// by the given pairing (ids and link ids offset per cell, so a
// cluster is a self-contained copy of the single-cell generator), with
// the shape's inter-cluster attenuation on every cross-cell link.
func generateClustered(pair func(*rand.Rand, GenConfig, []testbed.Point) (*Layout, error),
	shape clusterShape) func(GenConfig, *rand.Rand) (*Layout, error) {
	return func(cfg GenConfig, rng *rand.Rand) (*Layout, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		cfg = cfg.withDefaults()
		k := cfg.Clusters
		if k == 0 {
			k = 4
		}
		if cfg.Nodes < 2*k {
			return nil, fmt.Errorf("topo: %d nodes across %d clusters (need at least a pair per cluster)", cfg.Nodes, k)
		}
		loss := knob.Or(cfg.InterClusterLossDB, shape.defLossDB)
		// Cell sizes: spread the remainder over the first cells.
		sizes := make([]int, k)
		for c := range sizes {
			sizes[c] = cfg.Nodes / k
			if c < cfg.Nodes%k {
				sizes[c]++
			}
		}
		if shape.evenCells {
			// Pair up odd cells, shifting one node between each pair, so
			// at most one cell (only when Nodes is odd) drops a leftover.
			// Every cell holds ≥2 nodes, so an odd cell holds ≥3 and the
			// donor keeps a pair.
			last := -1
			for c, n := range sizes {
				if n%2 == 0 {
					continue
				}
				if last < 0 {
					last = c
				} else {
					sizes[last]++
					sizes[c]--
					last = -1
				}
			}
		}
		maxPer := 0
		for _, n := range sizes {
			if n > maxPer {
				maxPer = n
			}
		}
		radius := math.Sqrt(cfg.AreaPerNode * float64(maxPer) / math.Pi)
		gap := cfg.ClusterGapM
		if gap == 0 {
			gap = shape.gapFactor * radius
			if gap < shape.minGapM {
				gap = shape.minGapM
			}
		}
		cols := int(math.Ceil(math.Sqrt(float64(k))))
		out := &Layout{
			Positions:          make(map[mac.NodeID]testbed.Point, cfg.Nodes),
			Clusters:           k,
			ClusterOf:          make(map[mac.NodeID]int, cfg.Nodes),
			InterClusterLossDB: loss,
			SparseSNRDB:        shape.sparseSNRDB,
		}
		idBase, linkBase := 0, 0
		for c := 0; c < k; c++ {
			n := sizes[c]
			center := testbed.Point{
				X: float64(c%cols) * gap,
				Y: float64(c/cols) * gap,
			}
			cell, err := pair(rng, cfg, placeCell(rng, cfg, n, center, radius))
			if err != nil {
				return nil, fmt.Errorf("topo: cluster %d: %w", c, err)
			}
			out.Cells = append(out.Cells, Cell{Center: center, RadiusM: radius})
			for _, nd := range cell.Nodes {
				id := nd.ID + mac.NodeID(idBase)
				out.Nodes = append(out.Nodes, Node{ID: id, Antennas: nd.Antennas})
				out.Positions[id] = cell.Positions[nd.ID]
				out.ClusterOf[id] = c
			}
			for _, l := range cell.Links {
				out.Links = append(out.Links, Link{
					ID: l.ID + linkBase,
					Tx: l.Tx + mac.NodeID(idBase),
					Rx: l.Rx + mac.NodeID(idBase),
				})
			}
			// Offsets advance by the requested cell size even when the
			// pairing dropped an odd leftover, keeping id ranges disjoint.
			idBase += n
			linkBase += len(cell.Links)
		}
		if len(out.Links) == 0 {
			return nil, fmt.Errorf("topo: clustered pairing produced no links from %d nodes", cfg.Nodes)
		}
		return out, nil
	}
}

// placeCell samples n points uniformly in a disk of the given radius
// around center, with the same MinSpacing rejection (and relaxation)
// as placeDisk.
func placeCell(rng *rand.Rand, cfg GenConfig, n int, center testbed.Point, radius float64) []testbed.Point {
	pts := make([]testbed.Point, 0, n)
	const maxTries = 200
	for len(pts) < n {
		var p testbed.Point
		ok := false
		for try := 0; try < maxTries; try++ {
			r := radius * math.Sqrt(rng.Float64())
			theta := 2 * math.Pi * rng.Float64()
			p = testbed.Point{X: center.X + r*math.Cos(theta), Y: center.Y + r*math.Sin(theta)}
			ok = true
			for _, q := range pts {
				if p.Distance(q) < cfg.MinSpacing {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		pts = append(pts, p) // spacing-relaxed point if the budget ran out
	}
	return pts
}
