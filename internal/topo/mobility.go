package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"nplus/internal/mac"
	"nplus/internal/testbed"
)

// Mobility is one station's movement process. Step advances the
// station from pos by up to speedMPS·dt meters, drawing every random
// choice from rng (a per-station stream, so motion is independent of
// event interleaving), and returns the new position plus the index of
// the layout cell the station now belongs to. Instances carry
// per-station state (the current waypoint), so each station gets its
// own from the spec's New.
type Mobility interface {
	Step(rng *rand.Rand, l *Layout, id mac.NodeID, pos testbed.Point, speedMPS, dt float64) (testbed.Point, int)
}

// MobilitySpec names one mobility model drivers can select per run.
type MobilitySpec struct {
	Name        string
	Description string
	New         func() Mobility
}

var (
	mobilityMu  sync.RWMutex
	mobilityReg = map[string]MobilitySpec{}
)

// RegisterMobility adds s to the mobility registry (init-time only;
// duplicates and incomplete specs panic).
func RegisterMobility(s MobilitySpec) {
	if s.Name == "" || s.New == nil {
		panic("topo: RegisterMobility with empty name or nil New")
	}
	mobilityMu.Lock()
	defer mobilityMu.Unlock()
	if _, dup := mobilityReg[s.Name]; dup {
		panic(fmt.Sprintf("topo: duplicate mobility model %q", s.Name))
	}
	mobilityReg[s.Name] = s
}

// MobilityByName returns the mobility model registered under name.
func MobilityByName(name string) (MobilitySpec, bool) {
	mobilityMu.RLock()
	defer mobilityMu.RUnlock()
	s, ok := mobilityReg[name]
	return s, ok
}

// MobilityNames returns every registered mobility model name, sorted.
func MobilityNames() []string {
	mobilityMu.RLock()
	defer mobilityMu.RUnlock()
	names := make([]string, 0, len(mobilityReg))
	for n := range mobilityReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// waypoint is the classic random-waypoint model confined to the
// station's cell: walk straight toward a uniform target in the cell,
// pick a new one on arrival. Targets are drawn in the cell nearest
// the station's current position, so a station never leaves its cell.
type waypoint struct {
	target    testbed.Point
	hasTarget bool
}

func (w *waypoint) Step(rng *rand.Rand, l *Layout, id mac.NodeID, pos testbed.Point, speedMPS, dt float64) (testbed.Point, int) {
	if !w.hasTarget {
		w.target = l.Cells[l.NearestCell(pos)].UniformIn(rng)
		w.hasTarget = true
	}
	pos = moveToward(pos, w.target, speedMPS*dt, &w.hasTarget)
	return pos, l.NearestCell(pos)
}

// clusterHop is waypoint with occasional migrations: most new targets
// stay in the current cell, but with probability hopProb the target
// is drawn in a uniformly random other cell, and the station walks
// there (re-homing when it crosses the midpoint between cell
// centers). On single-cell layouts it degenerates to waypoint.
type clusterHop struct {
	target    testbed.Point
	hasTarget bool
}

// hopProb is the chance each completed leg continues into another
// cell rather than staying home.
const hopProb = 0.3

func (c *clusterHop) Step(rng *rand.Rand, l *Layout, id mac.NodeID, pos testbed.Point, speedMPS, dt float64) (testbed.Point, int) {
	if !c.hasTarget {
		cell := l.NearestCell(pos)
		if len(l.Cells) > 1 && rng.Float64() < hopProb {
			// A uniformly random *other* cell.
			pick := rng.Intn(len(l.Cells) - 1)
			if pick >= cell {
				pick++
			}
			cell = pick
		}
		c.target = l.Cells[cell].UniformIn(rng)
		c.hasTarget = true
	}
	pos = moveToward(pos, c.target, speedMPS*dt, &c.hasTarget)
	return pos, l.NearestCell(pos)
}

// moveToward advances pos up to step meters straight at target,
// clearing *hasTarget on arrival.
func moveToward(pos, target testbed.Point, step float64, hasTarget *bool) testbed.Point {
	d := pos.Distance(target)
	if d <= step {
		*hasTarget = false
		return target
	}
	f := step / d
	return testbed.Point{X: pos.X + (target.X-pos.X)*f, Y: pos.Y + (target.Y-pos.Y)*f}
}

func init() {
	RegisterMobility(MobilitySpec{
		Name:        "waypoint",
		Description: "random waypoint confined to the station's cell: straight legs to uniform targets",
		New:         func() Mobility { return &waypoint{} },
	})
	RegisterMobility(MobilitySpec{
		Name:        "cluster-hop",
		Description: "random waypoint with occasional legs into another cell (roaming between buildings)",
		New:         func() Mobility { return &clusterHop{} },
	})
}
