package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Spec names one deployment generator that drivers (cmd/npsim,
// experiment configs) can run by name, mirroring the scenario and
// traffic registries so `-list` output always reflects what is
// actually registered.
type Spec struct {
	Name        string
	Description string
	// Clustered marks generators that understand the cluster-geometry
	// knobs (Clusters, InterClusterLossDB, ClusterGapM); drivers
	// reject those knobs for generators that would ignore them.
	Clustered bool
	// Uplink marks generators whose layouts have AP structure (every
	// link terminates at an access point) — the shape churn and
	// association policies require: an arriving client must have APs
	// to attach to.
	Uplink   bool
	Generate func(cfg GenConfig, rng *rand.Rand) (*Layout, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Spec{}
)

// Register adds s to the generator registry. Registration happens in
// init functions, so duplicates and incomplete specs panic.
func Register(s Spec) {
	if s.Name == "" || s.Generate == nil {
		panic("topo: Register with empty name or nil Generate")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("topo: duplicate generator %q", s.Name))
	}
	registry[s.Name] = s
}

// ByName returns the generator registered under name.
func ByName(name string) (Spec, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered generator name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate runs the named generator.
func Generate(name string, cfg GenConfig, rng *rand.Rand) (*Layout, error) {
	spec, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("topo: unknown generator %q (have %v)", name, Names())
	}
	return spec.Generate(cfg, rng)
}

func init() {
	Register(Spec{
		Name:        "disk-adhoc",
		Description: "uniform-disk placement, nearest-neighbor tx→rx pairs, mixed antennas",
		Generate:    generate(placeDisk, pairAdhoc),
	})
	Register(Spec{
		Name:        "disk-uplink",
		Description: "uniform-disk placement, clients uplink to their nearest multi-antenna AP",
		Uplink:      true,
		Generate:    generate(placeDisk, pairUplink),
	})
	Register(Spec{
		Name:        "grid-adhoc",
		Description: "grid placement, nearest-neighbor tx→rx pairs, mixed antennas",
		Generate:    generate(placeGrid, pairAdhoc),
	})
	Register(Spec{
		Name:        "grid-uplink",
		Description: "grid placement, clients uplink to their nearest multi-antenna AP",
		Uplink:      true,
		Generate:    generate(placeGrid, pairUplink),
	})
	// Clustered cells: the spatial-reuse regime of the related work
	// (MIMO random access with geometry-limited concurrency). Campus
	// buildings sit far apart with heavy shells, so each building is
	// its own collision domain and the event-driven run shards; rooms
	// on one floor are close with light walls, so hearing is partial —
	// hidden terminals — without necessarily splitting components.
	Register(Spec{
		Name:        "campus",
		Description: "separated building cells, per-building AP uplink, 60 dB shells: sharded collision domains",
		Clustered:   true,
		Uplink:      true,
		Generate: generateClustered(pairUplink, clusterShape{
			defLossDB: 60, gapFactor: 10, minGapM: 400, sparseSNRDB: -40,
		}),
	})
	Register(Spec{
		Name:        "multiroom",
		Description: "adjacent room cells on one floor, ad-hoc pairs, 15 dB walls: partial hearing, hidden terminals",
		Clustered:   true,
		Generate: generateClustered(pairAdhoc, clusterShape{
			defLossDB: 15, gapFactor: 2.4, minGapM: 0, sparseSNRDB: -40, evenCells: true,
		}),
	})
}
