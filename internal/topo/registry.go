package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Spec names one deployment generator that drivers (cmd/npsim,
// experiment configs) can run by name, mirroring the scenario and
// traffic registries so `-list` output always reflects what is
// actually registered.
type Spec struct {
	Name        string
	Description string
	Generate    func(cfg GenConfig, rng *rand.Rand) (*Layout, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Spec{}
)

// Register adds s to the generator registry. Registration happens in
// init functions, so duplicates and incomplete specs panic.
func Register(s Spec) {
	if s.Name == "" || s.Generate == nil {
		panic("topo: Register with empty name or nil Generate")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("topo: duplicate generator %q", s.Name))
	}
	registry[s.Name] = s
}

// ByName returns the generator registered under name.
func ByName(name string) (Spec, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered generator name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate runs the named generator.
func Generate(name string, cfg GenConfig, rng *rand.Rand) (*Layout, error) {
	spec, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("topo: unknown generator %q (have %v)", name, Names())
	}
	return spec.Generate(cfg, rng)
}

func init() {
	Register(Spec{
		Name:        "disk-adhoc",
		Description: "uniform-disk placement, nearest-neighbor tx→rx pairs, mixed antennas",
		Generate:    generate(placeDisk, pairAdhoc),
	})
	Register(Spec{
		Name:        "disk-uplink",
		Description: "uniform-disk placement, clients uplink to their nearest multi-antenna AP",
		Generate:    generate(placeDisk, pairUplink),
	})
	Register(Spec{
		Name:        "grid-adhoc",
		Description: "grid placement, nearest-neighbor tx→rx pairs, mixed antennas",
		Generate:    generate(placeGrid, pairAdhoc),
	})
	Register(Spec{
		Name:        "grid-uplink",
		Description: "grid placement, clients uplink to their nearest multi-antenna AP",
		Generate:    generate(placeGrid, pairUplink),
	})
}
