package assoc

import (
	"testing"

	"nplus/internal/knob"
)

func auto() Config { return Config{BiasDBPerAntenna: knob.Auto} }

func mustPolicy(t *testing.T, name string, cfg Config) Policy {
	t.Helper()
	p, err := New(name, cfg)
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return p
}

func TestNearestAndMaxSNR(t *testing.T) {
	cands := []Candidate{
		{AP: 1, Antennas: 1, DistanceM: 50, SNRDB: 20},
		{AP: 2, Antennas: 3, DistanceM: 10, SNRDB: 12},
		{AP: 3, Antennas: 2, DistanceM: 30, SNRDB: 25},
	}
	if got := mustPolicy(t, "nearest", auto()).Choose(cands); got != 2 {
		t.Fatalf("nearest chose %d, want 2", got)
	}
	if got := mustPolicy(t, "max-snr", auto()).Choose(cands); got != 3 {
		t.Fatalf("max-snr chose %d, want 3", got)
	}
}

func TestTiesBreakTowardLowerAPID(t *testing.T) {
	cands := []Candidate{
		{AP: 4, Antennas: 1, DistanceM: 10, SNRDB: 20},
		{AP: 7, Antennas: 1, DistanceM: 10, SNRDB: 20},
	}
	for _, name := range []string{"nearest", "max-snr"} {
		if got := mustPolicy(t, name, auto()).Choose(cands); got != 4 {
			t.Fatalf("%s tie chose %d, want 4", name, got)
		}
	}
	if got := mustPolicy(t, "biased-sinr", auto()).Choose(cands); got != 4 {
		t.Fatalf("biased-sinr tie chose %d, want 4", got)
	}
}

func TestBiasedSINRTierBias(t *testing.T) {
	// AP 1 is marginally louder; AP 2 carries three antennas. With
	// zero bias the louder AP wins; the default bias flips the choice.
	cands := []Candidate{
		{AP: 1, Antennas: 1, DistanceM: 10, SNRDB: 21},
		{AP: 2, Antennas: 3, DistanceM: 20, SNRDB: 20},
	}
	if got := mustPolicy(t, "biased-sinr", Config{BiasDBPerAntenna: 0}).Choose(cands); got != 1 {
		t.Fatalf("unbiased SINR chose %d, want 1", got)
	}
	if got := mustPolicy(t, "biased-sinr", auto()).Choose(cands); got != 2 {
		t.Fatalf("default bias chose %d, want 2 (tier bias should win)", got)
	}
}

func TestBiasKnobRejectedWherePolicyHasNone(t *testing.T) {
	for _, name := range []string{"nearest", "max-snr"} {
		if _, err := New(name, Config{BiasDBPerAntenna: 3}); err == nil {
			t.Fatalf("%s accepted a bias knob it cannot consume", name)
		}
	}
	if _, err := New("biased-sinr", Config{BiasDBPerAntenna: -2}); err == nil {
		t.Fatal("negative bias accepted")
	}
	if _, err := New("no-such-policy", auto()); err == nil {
		t.Fatal("unknown policy lookup succeeded")
	}
}
