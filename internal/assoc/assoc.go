// Package assoc decides which access point a client attaches to — on
// arrival, and again whenever mobility moves it. Policies are small
// pure functions over the candidate AP list (distances, link budgets,
// antenna counts), registered by name so a run spec can swap the
// association rule without touching the MAC: the classic nearest-AP
// and max-SNR rules, plus the biased-association family of
// arXiv:1507.04271, whose per-tier bias (cell-range expansion) pushes
// clients toward better-provisioned APs even when a closer one is
// louder.
package assoc

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nplus/internal/knob"
	"nplus/internal/mac"
)

// Candidate is one AP a client could attach to, as the client hears
// it: the average link budget (not a realized fade) and the AP's
// provisioning. Callers pass candidates in ascending AP id order so
// score ties break identically everywhere.
type Candidate struct {
	AP        mac.NodeID
	Antennas  int
	DistanceM float64
	SNRDB     float64
}

// Config tunes a policy. Float fields follow the knob sentinel rules:
// knob.Auto selects the calibrated default, explicit values are taken
// as given, and policies reject knobs they cannot consume.
type Config struct {
	// BiasDBPerAntenna is the biased-SINR policy's cell-range-expansion
	// bias: each AP's score gains this many dB per antenna beyond the
	// first (Auto → DefaultBiasDBPerAntenna). Only biased-sinr consumes
	// it; other policies reject an explicit value.
	BiasDBPerAntenna float64
}

// DefaultBiasDBPerAntenna is the calibrated tier bias — a 3-antenna
// AP gets +6 dB over a single-antenna one, enough to absorb clients
// from a nearer but lean AP without drowning geometry entirely.
const DefaultBiasDBPerAntenna = 3

// DefaultPolicy is the policy a dynamic run falls back to when none
// is selected: the same nearest-AP rule the static uplink generators
// pair with, so adding churn without an association block changes
// nothing about how stations pick their AP.
const DefaultPolicy = "nearest"

// Policy picks an AP from a non-empty candidate list. Implementations
// are deterministic: equal candidate lists yield equal choices.
type Policy interface {
	Choose(cands []Candidate) mac.NodeID
}

// Spec names one association policy drivers can select per run.
type Spec struct {
	Name        string
	Description string
	New         func(cfg Config) (Policy, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Spec{}
)

// Register adds s to the policy registry (init-time only; duplicates
// and incomplete specs panic).
func Register(s Spec) {
	if s.Name == "" || s.New == nil {
		panic("assoc: Register with empty name or nil New")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("assoc: duplicate policy %q", s.Name))
	}
	registry[s.Name] = s
}

// ByName returns the policy registered under name.
func ByName(name string) (Spec, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered policy name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New builds the named policy.
func New(name string, cfg Config) (Policy, error) {
	spec, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("assoc: unknown policy %q (have %v)", name, Names())
	}
	return spec.New(cfg)
}

// rejectBias is the shared validation for policies that have no bias
// knob.
func rejectBias(name string, cfg Config) error {
	if !knob.IsAuto(cfg.BiasDBPerAntenna) {
		return fmt.Errorf("assoc: policy %q has no bias knob (bias_db_per_antenna is biased-sinr only)", name)
	}
	return nil
}

// argBest returns the AP maximizing score; ties break toward the
// earlier candidate — ascending AP id, by the Candidate ordering
// contract.
func argBest(cands []Candidate, score func(i int) float64) mac.NodeID {
	best, bestScore := 0, math.Inf(-1)
	for i := range cands {
		if s := score(i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return cands[best].AP
}

type nearest struct{}

func (nearest) Choose(cands []Candidate) mac.NodeID {
	return argBest(cands, func(i int) float64 { return -cands[i].DistanceM })
}

type maxSNR struct{}

func (maxSNR) Choose(cands []Candidate) mac.NodeID {
	return argBest(cands, func(i int) float64 { return cands[i].SNRDB })
}

// biasedSINR scores each AP by the SINR a client would see from it —
// its budget over noise plus every *other* AP's signal treated as
// interference — plus the per-antenna tier bias of arXiv:1507.04271.
// Against bare max-SNR this deloads dominant APs: a candidate close
// to a loud rival scores poorly even if its own budget is decent,
// and the bias lets well-provisioned APs win cell-edge clients.
type biasedSINR struct{ biasDB float64 }

func (p biasedSINR) Choose(cands []Candidate) mac.NodeID {
	var total float64 // Σ linear budgets, relative to unit noise
	lin := make([]float64, len(cands))
	for i, c := range cands {
		lin[i] = math.Pow(10, c.SNRDB/10)
		total += lin[i]
	}
	return argBest(cands, func(i int) float64 {
		sinr := 10 * math.Log10(lin[i]/(1+total-lin[i]))
		return sinr + p.biasDB*float64(cands[i].Antennas-1)
	})
}

func init() {
	Register(Spec{
		Name:        "nearest",
		Description: "attach to the geometrically nearest AP (the legacy uplink pairing rule)",
		New: func(cfg Config) (Policy, error) {
			if err := rejectBias("nearest", cfg); err != nil {
				return nil, err
			}
			return nearest{}, nil
		},
	})
	Register(Spec{
		Name:        "max-snr",
		Description: "attach to the AP with the strongest average link budget",
		New: func(cfg Config) (Policy, error) {
			if err := rejectBias("max-snr", cfg); err != nil {
				return nil, err
			}
			return maxSNR{}, nil
		},
	})
	Register(Spec{
		Name:        "biased-sinr",
		Description: "attach by SINR (other APs as interference) plus a per-antenna tier bias (arXiv:1507.04271)",
		New: func(cfg Config) (Policy, error) {
			bias := knob.Or(cfg.BiasDBPerAntenna, DefaultBiasDBPerAntenna)
			if bias < 0 {
				return nil, fmt.Errorf("assoc: bias %g dB/antenna is negative (a tier penalty)", bias)
			}
			return biasedSINR{biasDB: bias}, nil
		},
	})
}
