// Package nplus's repository-level benchmarks regenerate every table
// and figure of the paper's evaluation (§6) plus the §3.5 overhead
// numbers and the ablations DESIGN.md calls out. The figure
// benchmarks drive the exp registry — the same engine cmd/npexp uses
// — and run each experiment once per iteration, reporting the
// headline metrics through testing.B metrics, so
//
//	go test -bench=. -benchmem
//
// prints the paper-vs-measured comparison alongside the usual
// throughput numbers. EXPERIMENTS.md records a full run.
package nplus_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nplus/internal/core"
	"nplus/internal/exp"
	"nplus/internal/mac"
	"nplus/internal/topo"
)

// runRegistered runs the named registry experiment b.N times with the
// given scaling overrides and returns the last result for metric
// reporting.
func runRegistered(b *testing.B, name string, o exp.Overrides) exp.Result {
	b.Helper()
	e, ok := exp.Get(name)
	if !ok {
		b.Fatalf("experiment %q not registered (have %v)", name, exp.Names())
	}
	cfg := e.DefaultConfig()
	if c, ok := cfg.(exp.Configurable); ok {
		cfg = c.WithOverrides(o)
	}
	var last exp.Result
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// BenchmarkRegistry runs every registered experiment at smoke scale,
// so `go test -bench . -benchtime 1x` exercises the whole registry
// and a new registration cannot silently rot.
func BenchmarkRegistry(b *testing.B) {
	smoke := exp.Overrides{Trials: 20, Placements: 4, Epochs: 20, Duration: 0.02}
	for _, e := range exp.All() {
		b.Run(e.Name(), func(b *testing.B) {
			runRegistered(b, e.Name(), smoke)
		})
	}
}

// BenchmarkFig9aSensingPower — Fig. 9(a): RSSI jump when a weak tx2
// starts under a strong tx1, with and without projection (paper: 0.4
// vs 8.5 dB).
func BenchmarkFig9aSensingPower(b *testing.B) {
	last := runRegistered(b, "fig9", exp.Overrides{Trials: 60}).(*core.Fig9Result)
	b.ReportMetric(last.JumpRawDB, "raw-jump-dB")
	b.ReportMetric(last.JumpProjectedDB, "proj-jump-dB")
}

// BenchmarkFig9bCorrelation — Fig. 9(b): fraction of busy-medium
// correlations indistinguishable from idle (paper: ≈18% raw, ≈0%
// projected).
func BenchmarkFig9bCorrelation(b *testing.B) {
	last := runRegistered(b, "fig9", exp.Overrides{Trials: 150}).(*core.Fig9Result)
	b.ReportMetric(100*last.IndistinctRaw, "raw-indistinct-%")
	b.ReportMetric(100*last.IndistinctProjected, "proj-indistinct-%")
}

// BenchmarkFig11aNulling — Fig. 11(a): average SNR reduction of the
// wanted stream due to imperfect nulling, below the L=27 dB threshold
// (paper: 0.8 dB).
func BenchmarkFig11aNulling(b *testing.B) {
	last := runRegistered(b, "fig11", exp.Overrides{Placements: 120}).(*core.Fig11Result)
	b.ReportMetric(last.AvgNullingDB, "nulling-loss-dB")
}

// BenchmarkFig11bAlignment — Fig. 11(b): same for alignment (paper:
// 1.3 dB, worse than nulling because U must also be estimated).
func BenchmarkFig11bAlignment(b *testing.B) {
	last := runRegistered(b, "fig11", exp.Overrides{Placements: 120}).(*core.Fig11Result)
	b.ReportMetric(last.AvgAlignmentDB, "alignment-loss-dB")
}

// BenchmarkFig12Throughput — Fig. 12(a)–(d): trio throughput under n+
// vs 802.11n (paper: total ≈2×, 1-antenna ≈0.97×, 2-antenna ≈1.5×,
// 3-antenna ≈3.5×).
func BenchmarkFig12Throughput(b *testing.B) {
	last := runRegistered(b, "fig12", exp.Overrides{Placements: 15, Epochs: 80}).(*core.Fig12Result)
	b.ReportMetric(last.MeanGainTotal, "total-gain-x")
	b.ReportMetric(last.MeanGainFlow[1], "gain-1ant-x")
	b.ReportMetric(last.MeanGainFlow[2], "gain-2ant-x")
	b.ReportMetric(last.MeanGainFlow[3], "gain-3ant-x")
}

// BenchmarkFig13aVs80211n — Fig. 13(a): downlink scenario total gain
// over 802.11n (paper: ≈2.4×).
func BenchmarkFig13aVs80211n(b *testing.B) {
	last := runRegistered(b, "fig13", exp.Overrides{Placements: 12, Epochs: 80}).(*core.Fig13Result)
	b.ReportMetric(last.MeanGainVsLegacy, "gain-vs-80211n-x")
}

// BenchmarkFig13bVsBeamforming — Fig. 13(b): same scenario vs the
// multi-user beamforming baseline [7] (paper: ≈1.8×).
func BenchmarkFig13bVsBeamforming(b *testing.B) {
	last := runRegistered(b, "fig13", exp.Overrides{Placements: 12, Epochs: 80}).(*core.Fig13Result)
	b.ReportMetric(last.MeanGainVsBeamforming, "gain-vs-BF-x")
}

// BenchmarkHandshakeOverhead — §3.5: alignment-space size and total
// light-weight-handshake overhead (paper: ≈3 OFDM symbols, ≈4%).
func BenchmarkHandshakeOverhead(b *testing.B) {
	last := runRegistered(b, "overhead", exp.Overrides{Trials: 40}).(*core.OverheadResult)
	b.ReportMetric(last.DiffSymbols.Mean(), "align-symbols")
	b.ReportMetric(last.RawBytes.Mean()/last.DiffBytes.Mean(), "compression-x")
	b.ReportMetric(100*last.OverheadFraction, "overhead-%")
}

// BenchmarkDelayLoad — delay vs offered load on generated ad-hoc
// deployments: reports the MACs' delivered throughput at the top of
// the sweep (n+ should carry roughly 2× before saturating) and the
// n+ p95 delay at the lightest load.
func BenchmarkDelayLoad(b *testing.B) {
	last := runRegistered(b, "delayload", exp.Overrides{Placements: 2, Duration: 0.04}).(*core.DelayLoadResult)
	top := last.Points[len(last.Points)-1]
	b.ReportMetric(top.Throughput[0], "nplus-Mbps")
	b.ReportMetric(top.Throughput[1], "80211n-Mbps")
	b.ReportMetric(last.Points[0].Delay[0].P95*1e3, "nplus-light-p95-ms")
}

// BenchmarkFairSize — Jain fairness across network sizes under both
// MACs on generated deployments.
func BenchmarkFairSize(b *testing.B) {
	last := runRegistered(b, "fairsize", exp.Overrides{Placements: 2, Duration: 0.03}).(*core.FairSizeResult)
	top := last.Points[len(last.Points)-1]
	b.ReportMetric(top.Jain[0], "nplus-jain")
	b.ReportMetric(top.Jain[1], "80211n-jain")
}

var (
	planner200Once sync.Once
	planner200Net  *core.Network
	planner200Err  error
)

// planner200Setup builds (once) the 200-node generated uplink
// deployment the planner benchmarks run on — the same scale as the
// CI workload smoke.
func planner200Setup(b *testing.B) *core.Network {
	b.Helper()
	planner200Once.Do(func() {
		layout, err := topo.Generate("disk-uplink", topo.GenConfig{Nodes: 200}, rand.New(rand.NewSource(42)))
		if err != nil {
			planner200Err = err
			return
		}
		planner200Net, planner200Err = core.NewNetworkFromLayout(7, layout, core.DefaultOptions())
	})
	if planner200Err != nil {
		b.Fatal(planner200Err)
	}
	return planner200Net
}

// BenchmarkPlanner200NodeRound measures one contention round of the
// join planner on a 200-node deployment: a primary win planned via
// PlanBest, then a secondary join against it. This is the MAC hot
// path that makes large event-driven runs planner-bound; CI exports
// its ns/op as BENCH_planner.json so future PRs have a perf
// trajectory to compare against.
func BenchmarkPlanner200NodeRound(b *testing.B) {
	net := planner200Setup(b)
	sc, err := net.Scenario(99)
	if err != nil {
		b.Fatal(err)
	}
	flows := net.Flows
	// A 2-antenna primary and a 3-antenna secondary joiner.
	var prim, join *mac.Flow
	for i := range flows {
		f := &flows[i]
		if prim == nil && f.TxAntennas == 2 {
			prim = f
		} else if join == nil && f.TxAntennas == 3 {
			join = f
		}
	}
	if prim == nil || join == nil {
		b.Fatal("generated deployment lacks the mixed-antenna flows the round needs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		group, err := sc.PlanBest(mac.JoinRequest{Dests: []mac.Flow{*prim}}, nil, false, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sc.PlanBest(mac.JoinRequest{Dests: []mac.Flow{*join}}, group, false, false); err != nil && err != mac.ErrNoDoF {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocol200NodeSaturated runs the full event-driven n+
// protocol on the 200-node deployment under heavy open-loop load —
// the wall-clock view of the same hot path (plus delivery, traffic,
// and event-engine costs).
func BenchmarkProtocol200NodeSaturated(b *testing.B) {
	net := planner200Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := net.RunTrafficProtocol(core.TrafficRun{
			Mode: mac.ModeNPlus, Duration: 0.02, Model: "poisson", RatePPS: 800,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpatialCampus1000 compares one cold, seeded,
// end-to-end run (deployment construction + simulation, exactly what
// runspec.Run pays) of the sharded spatial-reuse model against the
// same 1,000 nodes forced into one clique — the historical
// single-collision-domain model, which both serializes the whole
// campus behind one contention domain AND must materialize every
// pairwise channel, because under a global medium every planner
// decision can touch any cross-pair (the sparse floor is only sound
// when the hearing graph bounds who interacts). The clique carries
// roughly an eighth of the load while paying full-network contention
// and n² channel state, so the headline metric is wall-clock per
// served packet (ms-per-served) — the only basis on which the two
// runs carry comparable work. CI exports both as BENCH_spatial.json
// and gates the sharded/clique ratio at ≥3×.
func BenchmarkSpatialCampus1000(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		cs    float64
		dense bool
	}{
		{"sharded", core.DefaultOptions().CSThresholdDB, false},
		{"clique", -200, true}, // hear everything, model every channel
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ResetTimer()
			var served int64
			var res *core.TrafficResult
			for i := 0; i < b.N; i++ {
				layout, err := topo.Generate("campus",
					topo.GenConfig{Nodes: 1000, Clusters: 8, InterClusterLossDB: topo.Auto},
					rand.New(rand.NewSource(7)))
				if err != nil {
					b.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.CSThresholdDB = cfg.cs
				if cfg.dense {
					opts.SparseSNRDB = 0 // historical dense draw
				}
				net, err := core.NewNetworkFromLayout(7, layout, opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err = net.RunTraffic(core.TrafficRun{
					Mode: mac.ModeNPlus, Duration: 0.03, Model: "poisson", RatePPS: 4000,
				})
				if err != nil {
					b.Fatal(err)
				}
				served = 0
				for _, fs := range res.PerFlow {
					served += fs.Served
				}
			}
			b.ReportMetric(float64(res.Components), "components")
			b.ReportMetric(float64(res.PeakBusyComponents), "peak-busy-comps")
			b.ReportMetric(float64(served), "served-pkts")
			if served > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(served)/1e6, "ms-per-served")
			}
		})
	}
}

var (
	parallelCampusOnce sync.Once
	parallelCampusNet  *core.Network
	parallelCampusErr  error
)

// parallelCampusSetup builds (once, outside every timer) the
// 1,000-node, 8-cluster campus the parallel-execution benchmarks
// share, so the sub-benchmarks measure pure simulation cost at each
// worker count over the identical deployment.
func parallelCampusSetup(b *testing.B) *core.Network {
	b.Helper()
	parallelCampusOnce.Do(func() {
		layout, err := topo.Generate("campus",
			topo.GenConfig{Nodes: 1000, Clusters: 8, InterClusterLossDB: topo.Auto},
			rand.New(rand.NewSource(7)))
		if err != nil {
			parallelCampusErr = err
			return
		}
		parallelCampusNet, parallelCampusErr = core.NewNetworkFromLayout(7, layout, core.DefaultOptions())
	})
	if parallelCampusErr != nil {
		b.Fatal(parallelCampusErr)
	}
	return parallelCampusNet
}

// BenchmarkParallelCampus1000 measures the component-parallel
// scheduler on an 8-component campus at 1, 2, and 4 workers — results
// are bit-identical at every count, so the sub-benchmarks differ only
// in wall clock. CI exports this as BENCH_parallel.json and gates the
// workers1/workers4 ratio at ≥2× on its multi-core runners (a 1-CPU
// box reports ratio ≈1: the pool cannot beat GOMAXPROCS).
func BenchmarkParallelCampus1000(b *testing.B) {
	net := parallelCampusSetup(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			var served int64
			for i := 0; i < b.N; i++ {
				res, err := net.RunTraffic(core.TrafficRun{
					Mode: mac.ModeNPlus, Duration: 0.03, Model: "poisson", RatePPS: 4000,
					Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				served = 0
				for _, fs := range res.PerFlow {
					served += fs.Served
				}
			}
			b.ReportMetric(float64(served), "served-pkts")
		})
	}
}

// BenchmarkStreamingDelayMemory pins the streaming-stats half of the
// parallel redesign: doubling the horizon doubles served packets while
// the quantile-sketch bucket count stays near-flat, because per-packet
// delays land in a bounded log-bucket range — the retained-sample
// design this replaced grew its footprint linearly here. The heavily
// loaded trio drives thousands of served packets per flow, deep into
// the regime where the sketch saturates. CI exports the horizon pair
// in BENCH_parallel.json and gates bucket growth well below the
// served-packet growth.
func BenchmarkStreamingDelayMemory(b *testing.B) {
	nodes, links := core.TrioNodes()
	net, err := core.NewNetwork(21, nodes, links, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []struct {
		name string
		dur  float64
	}{{"horizon1x", 1.0}, {"horizon2x", 2.0}} {
		b.Run(h.name, func(b *testing.B) {
			var served, buckets int64
			for i := 0; i < b.N; i++ {
				res, err := net.RunTraffic(core.TrafficRun{
					Mode: mac.ModeNPlus, Duration: h.dur, Model: "poisson", RatePPS: 3000,
				})
				if err != nil {
					b.Fatal(err)
				}
				served, buckets = 0, 0
				for _, fs := range res.PerFlow {
					served += fs.Served
					buckets += int64(fs.Delay.Footprint())
				}
			}
			b.ReportMetric(float64(served), "served-pkts")
			b.ReportMetric(float64(buckets), "delay-buckets")
		})
	}
}

// BenchmarkChurnGraphMaintenance measures hearing-graph maintenance
// under a dynamic population on the 1,000-node campus: a stream of
// membership and movement events (depart, re-arrive, move), each
// followed by a component query — the exact sequence the churn
// controller drives. "incremental" applies each event in place with
// AddNode/RemoveNode/UpdateNode (O(n) edge re-probes per event);
// "rebuild" reconstructs the whole graph from the live set per event
// (the O(n²) alternative an incremental structure exists to avoid).
// CI exports the pair as BENCH_churn.json and gates the ratio at ≥5×.
func BenchmarkChurnGraphMaintenance(b *testing.B) {
	net := parallelCampusSetup(b)
	hears := net.Deployment.HearsFunc(core.DefaultOptions().CSThresholdDB)
	ids := net.Deployment.LiveIDs()
	const events = 60

	// churnStep applies event i to the graph via the incremental API:
	// cycle a victim node through depart → re-arrive → move.
	churnStep := func(g *mac.HearingGraph, i int) {
		victim := ids[((i/3)*37)%len(ids)]
		switch i % 3 {
		case 0:
			g.RemoveNode(victim)
		case 1:
			g.AddNode(victim, hears)
		default:
			g.UpdateNode(victim, hears)
		}
	}

	b.Run("incremental", func(b *testing.B) {
		var comps int
		for i := 0; i < b.N; i++ {
			g := net.Deployment.HearingGraph(core.DefaultOptions().CSThresholdDB)
			for e := 0; e < events; e++ {
				// Keep the stream add-before-remove consistent: event
				// 3k removes the node event 3k+1 restores.
				churnStep(g, e)
				comps = g.NumComponents()
			}
		}
		b.ReportMetric(float64(comps), "components")
		b.ReportMetric(events, "events-per-op")
	})
	b.Run("rebuild", func(b *testing.B) {
		var comps int
		for i := 0; i < b.N; i++ {
			live := make(map[mac.NodeID]bool, len(ids))
			for _, id := range ids {
				live[id] = true
			}
			for e := 0; e < events; e++ {
				victim := ids[((e/3)*37)%len(ids)]
				switch e % 3 {
				case 0:
					live[victim] = false
				case 1:
					live[victim] = true
				}
				cur := make([]mac.NodeID, 0, len(ids))
				for _, id := range ids {
					if live[id] {
						cur = append(cur, id)
					}
				}
				comps = mac.NewHearingGraph(cur, hears).NumComponents()
			}
		}
		b.ReportMetric(float64(comps), "components")
		b.ReportMetric(events, "events-per-op")
	})
}

// BenchmarkAblationJoinThreshold sweeps the §4 join threshold L: with
// L far above practice (no power control) single-antenna incumbents
// suffer more residual interference; with L too low joiners give up
// capacity. The paper picks 27 dB.
func BenchmarkAblationJoinThreshold(b *testing.B) {
	nodes, links := core.TrioNodes()
	for _, l := range []float64{15, 27, 60} {
		b.Run(thName(l), func(b *testing.B) {
			var loss, tput float64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.JoinThresholdDB = l
				net, err := core.NewNetwork(11, nodes, links, opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.RunEpochs(mac.ModeNPlus, 60)
				if err != nil {
					b.Fatal(err)
				}
				loss = res.SNRLossDB[1]
				tput = res.TotalThroughputMbps()
			}
			b.ReportMetric(loss, "1ant-SNR-loss-dB")
			b.ReportMetric(tput, "total-Mbps")
		})
	}
}

func thName(l float64) string {
	switch {
	case l < 20:
		return "L15dB"
	case l < 40:
		return "L27dB"
	default:
		return "L60dB"
	}
}

// BenchmarkAblationPerPacketRate compares n+'s per-packet ESNR rate
// selection (§3.4) against a static mid-table rate, demonstrating why
// the angle-dependent post-projection SNR (Fig. 7) demands per-packet
// selection.
func BenchmarkAblationPerPacketRate(b *testing.B) {
	// Covered structurally: rates are re-selected per join in every
	// epoch. This bench reports the spread of rates actually chosen
	// across one run, which a static scheme could not follow.
	nodes, links := core.TrioNodes()
	net, err := core.NewNetwork(12, nodes, links, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := net.RunEpochs(mac.ModeNPlus, 60)
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalThroughputMbps()
	}
	b.ReportMetric(total, "total-Mbps")
}
