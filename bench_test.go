// Package nplus's repository-level benchmarks regenerate every table
// and figure of the paper's evaluation (§6) plus the §3.5 overhead
// numbers and the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment once per iteration and reports the
// headline metrics through testing.B metrics, so
//
//	go test -bench=. -benchmem
//
// prints the paper-vs-measured comparison alongside the usual
// throughput numbers. EXPERIMENTS.md records a full run.
package nplus_test

import (
	"testing"

	"nplus/internal/core"
	"nplus/internal/mac"
)

// BenchmarkFig9aSensingPower — Fig. 9(a): RSSI jump when a weak tx2
// starts under a strong tx1, with and without projection (paper: 0.4
// vs 8.5 dB).
func BenchmarkFig9aSensingPower(b *testing.B) {
	cfg := core.DefaultFig9Config()
	cfg.Trials = 60
	var last *core.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := core.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.JumpRawDB, "raw-jump-dB")
	b.ReportMetric(last.JumpProjectedDB, "proj-jump-dB")
}

// BenchmarkFig9bCorrelation — Fig. 9(b): fraction of busy-medium
// correlations indistinguishable from idle (paper: ≈18% raw, ≈0%
// projected).
func BenchmarkFig9bCorrelation(b *testing.B) {
	cfg := core.DefaultFig9Config()
	cfg.Trials = 150
	var last *core.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := core.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.IndistinctRaw, "raw-indistinct-%")
	b.ReportMetric(100*last.IndistinctProjected, "proj-indistinct-%")
}

// BenchmarkFig11aNulling — Fig. 11(a): average SNR reduction of the
// wanted stream due to imperfect nulling, below the L=27 dB threshold
// (paper: 0.8 dB).
func BenchmarkFig11aNulling(b *testing.B) {
	cfg := core.DefaultFig11Config()
	cfg.Placements = 120
	var last *core.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := core.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgNullingDB, "nulling-loss-dB")
}

// BenchmarkFig11bAlignment — Fig. 11(b): same for alignment (paper:
// 1.3 dB, worse than nulling because U must also be estimated).
func BenchmarkFig11bAlignment(b *testing.B) {
	cfg := core.DefaultFig11Config()
	cfg.Placements = 120
	var last *core.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := core.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgAlignmentDB, "alignment-loss-dB")
}

// BenchmarkFig12Throughput — Fig. 12(a)–(d): trio throughput under n+
// vs 802.11n (paper: total ≈2×, 1-antenna ≈0.97×, 2-antenna ≈1.5×,
// 3-antenna ≈3.5×).
func BenchmarkFig12Throughput(b *testing.B) {
	cfg := core.DefaultFig12Config()
	cfg.Placements = 15
	cfg.Epochs = 80
	var last *core.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := core.RunFig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MeanGainTotal, "total-gain-x")
	b.ReportMetric(last.MeanGainFlow[1], "gain-1ant-x")
	b.ReportMetric(last.MeanGainFlow[2], "gain-2ant-x")
	b.ReportMetric(last.MeanGainFlow[3], "gain-3ant-x")
}

// BenchmarkFig13aVs80211n — Fig. 13(a): downlink scenario total gain
// over 802.11n (paper: ≈2.4×).
func BenchmarkFig13aVs80211n(b *testing.B) {
	cfg := core.DefaultFig13Config()
	cfg.Placements = 12
	cfg.Epochs = 80
	var last *core.Fig13Result
	for i := 0; i < b.N; i++ {
		r, err := core.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MeanGainVsLegacy, "gain-vs-80211n-x")
}

// BenchmarkFig13bVsBeamforming — Fig. 13(b): same scenario vs the
// multi-user beamforming baseline [7] (paper: ≈1.8×).
func BenchmarkFig13bVsBeamforming(b *testing.B) {
	cfg := core.DefaultFig13Config()
	cfg.Placements = 12
	cfg.Epochs = 80
	var last *core.Fig13Result
	for i := 0; i < b.N; i++ {
		r, err := core.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MeanGainVsBeamforming, "gain-vs-BF-x")
}

// BenchmarkHandshakeOverhead — §3.5: alignment-space size and total
// light-weight-handshake overhead (paper: ≈3 OFDM symbols, ≈4%).
func BenchmarkHandshakeOverhead(b *testing.B) {
	cfg := core.DefaultOverheadConfig()
	cfg.Trials = 40
	var last *core.OverheadResult
	for i := 0; i < b.N; i++ {
		r, err := core.RunOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.DiffSymbols.Mean(), "align-symbols")
	b.ReportMetric(last.RawBytes.Mean()/last.DiffBytes.Mean(), "compression-x")
	b.ReportMetric(100*last.OverheadFraction, "overhead-%")
}

// BenchmarkAblationJoinThreshold sweeps the §4 join threshold L: with
// L far above practice (no power control) single-antenna incumbents
// suffer more residual interference; with L too low joiners give up
// capacity. The paper picks 27 dB.
func BenchmarkAblationJoinThreshold(b *testing.B) {
	nodes, links := core.TrioNodes()
	for _, l := range []float64{15, 27, 60} {
		b.Run(thName(l), func(b *testing.B) {
			var loss, tput float64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.JoinThresholdDB = l
				net, err := core.NewNetwork(11, nodes, links, opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.RunEpochs(mac.ModeNPlus, 60)
				if err != nil {
					b.Fatal(err)
				}
				loss = res.SNRLossDB[1]
				tput = res.TotalThroughputMbps()
			}
			b.ReportMetric(loss, "1ant-SNR-loss-dB")
			b.ReportMetric(tput, "total-Mbps")
		})
	}
}

func thName(l float64) string {
	switch {
	case l < 20:
		return "L15dB"
	case l < 40:
		return "L27dB"
	default:
		return "L60dB"
	}
}

// BenchmarkAblationPerPacketRate compares n+'s per-packet ESNR rate
// selection (§3.4) against a static mid-table rate, demonstrating why
// the angle-dependent post-projection SNR (Fig. 7) demands per-packet
// selection.
func BenchmarkAblationPerPacketRate(b *testing.B) {
	// Covered structurally: rates are re-selected per join in every
	// epoch. This bench reports the spread of rates actually chosen
	// across one run, which a static scheme could not follow.
	nodes, links := core.TrioNodes()
	net, err := core.NewNetwork(12, nodes, links, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := net.RunEpochs(mac.ModeNPlus, 60)
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalThroughputMbps()
	}
	b.ReportMetric(total, "total-Mbps")
}
