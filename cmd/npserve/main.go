// Command npserve is the long-running spec-serving daemon: one warm
// process that accepts runspec specs over HTTP and answers with typed
// Reports, so batch clients (policy-evaluation loops, sweep tooling,
// dashboards) stop paying process startup and stop recomputing
// identical grid points.
//
// Endpoints:
//
//	POST /run      one spec (JSON) → its Report, byte-identical to
//	               `npsim -spec <file> -json`
//	POST /sweep    a sweep document (or single spec) → one compact
//	               JSONL Report row per grid point, streamed as points
//	               complete, byte-identical to `npexp -spec … -json`
//	GET  /metrics  serving metrics snapshot: requests, cache
//	               hits/misses, coalesced duplicates, queue depth,
//	               in-flight runs, per-run wall-time histogram
//	GET  /healthz  liveness
//
// Identical specs are memoized by canonical-spec hash (SHA-256 over
// the canonicalized JSON): a repeated spec is served from memory, and
// concurrent duplicates coalesce onto one execution. The execution
// queue is bounded — when it is full, new work is rejected
// immediately with 429 rather than queued without limit. SIGTERM and
// SIGINT drain gracefully: in-flight and queued runs complete, their
// clients get their bytes, and the process exits 0.
//
// Usage:
//
//	npserve -addr 127.0.0.1:9070
//	npserve -addr :9070 -queue 512 -exec-workers 8 -cache 8192 -pprof
//	curl -X POST --data-binary @examples/specs/uplink200.json http://127.0.0.1:9070/run
//	curl -N -X POST --data-binary @examples/specs/delay-sweep.json http://127.0.0.1:9070/sweep
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nplus/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9070", "listen address")
	queue := flag.Int("queue", 256, "bounded execution-queue depth; a full queue answers 429")
	execWorkers := flag.Int("exec-workers", 0, "concurrent spec executions (0 = GOMAXPROCS); each run may additionally shard internally via its spec's workers field")
	cache := flag.Int("cache", 4096, "memoized reports held before LRU eviction")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on SIGTERM/SIGINT")
	flag.Parse()

	s := serve.New(serve.Config{QueueDepth: *queue, Workers: *execWorkers, CacheCap: *cache})
	srv := &http.Server{Addr: *addr, Handler: s.Handler(*pprofOn)}

	// Listen before announcing, so "listening" in the log means curl
	// will connect.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "npserve: listening on %s (queue %d, cache %d)\n", ln.Addr(), *queue, *cache)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "npserve: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx) // stop accepting; wait for in-flight requests
		cancel()
		s.Close() // then drain the execution queue and stop the workers
		if err != nil {
			fmt.Fprintf(os.Stderr, "npserve: drain: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "npserve: drained")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "npserve: %v\n", err)
			os.Exit(1)
		}
	}
}
