// Command npsim runs one n+ deployment — a hand-built scenario from
// the core registry (the Fig. 3 trio, the Fig. 4 downlink) or a
// generated topology from the topo registry (uniform-disk / grid
// placement, ad-hoc or AP-uplink pairing, 50–500 nodes) — under a
// chosen MAC and traffic model, and prints per-flow results.
//
// With the default saturated traffic, scenarios use the fast
// epoch-based evaluation (the paper's §6.3 methodology) and -trace
// switches to the event-driven CSMA/CA protocol. Generated topologies
// and open-loop traffic models always run the event-driven protocol,
// which also reports per-packet delay percentiles, queue drops, and
// Jain's fairness.
//
// Usage:
//
//	npsim -scenario trio -mode nplus -seed 4
//	npsim -scenario trio -trace -duration 0.05
//	npsim -scenario downlink -traffic poisson -rate 600 -duration 0.2
//	npsim -topo disk-uplink -nodes 200 -traffic poisson -rate 100 -mode nplus
//	npsim -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"nplus/internal/core"
	"nplus/internal/mac"
	"nplus/internal/stats"
	"nplus/internal/topo"
	"nplus/internal/traffic"
)

func main() {
	scenarioNames := strings.Join(core.ScenarioNames(), ", ")
	topoNames := strings.Join(topo.Names(), ", ")
	trafficNames := strings.Join(traffic.Names(), ", ")
	modeNames := strings.Join(mac.ModeNames(), ", ")
	scenario := flag.String("scenario", "trio", "hand-built deployment, one of: "+scenarioNames)
	topoName := flag.String("topo", "", "generated deployment instead of -scenario, one of: "+topoNames)
	nodes := flag.Int("nodes", 50, "generated topology size (with -topo)")
	trafficName := flag.String("traffic", traffic.Saturated, "arrival model, one of: "+trafficNames)
	rate := flag.Float64("rate", 400, "mean per-flow arrival rate, packets/s (open-loop models)")
	queueCap := flag.Int("queue", 64, "per-station packet queue bound (open-loop models)")
	modeName := flag.String("mode", "nplus", "MAC variant, one of: "+modeNames)
	list := flag.Bool("list", false, "list registered scenarios, topologies, traffic models, and modes, then exit")
	seed := flag.Int64("seed", 4, "placement seed")
	epochs := flag.Int("epochs", 200, "contention rounds (epoch mode)")
	trace := flag.Bool("trace", false, "run the event-driven protocol and print the MAC trace")
	duration := flag.Float64("duration", 0.1, "virtual seconds (protocol mode)")
	flag.Parse()

	if *list {
		// Every section enumerates its registry: a newly registered
		// scenario, generator, or model shows up with no driver change.
		fmt.Println("scenarios:")
		for _, name := range core.ScenarioNames() {
			s, _ := core.ScenarioByName(name)
			fmt.Printf("  %-12s %s\n", s.Name, s.Description)
		}
		fmt.Println("topologies (generated):")
		for _, name := range topo.Names() {
			s, _ := topo.ByName(name)
			fmt.Printf("  %-12s %s\n", s.Name, s.Description)
		}
		fmt.Println("traffic models:")
		for _, name := range traffic.Names() {
			s, _ := traffic.ByName(name)
			fmt.Printf("  %-12s %s\n", s.Name, s.Description)
		}
		fmt.Println("modes:")
		for _, m := range mac.Modes() {
			fmt.Printf("  %-12s %s\n", m.CLIName(), m)
		}
		return
	}

	mode, err := mac.ParseMode(*modeName)
	if err != nil {
		usagef("%v", err)
	}
	if _, ok := traffic.ByName(*trafficName); !ok {
		usagef("unknown traffic model %q (have: %s)", *trafficName, trafficNames)
	}

	var net *core.Network
	var label string
	if *topoName != "" {
		spec, ok := topo.ByName(*topoName)
		if !ok {
			usagef("unknown topology generator %q (have: %s)", *topoName, topoNames)
		}
		layout, err := spec.Generate(topo.GenConfig{Nodes: *nodes}, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fatalf("%v", err)
		}
		net, err = core.NewNetworkFromLayout(*seed, layout, core.DefaultOptions())
		if err != nil {
			fatalf("%v", err)
		}
		label = fmt.Sprintf("topology %s (%d nodes, %d flows)", spec.Name, len(layout.Nodes), len(layout.Links))
	} else {
		spec, ok := core.ScenarioByName(*scenario)
		if !ok {
			usagef("unknown scenario %q (have: %s)", *scenario, scenarioNames)
		}
		n, l := spec.Build()
		net, err = core.NewNetwork(*seed, n, l, core.DefaultOptions())
		if err != nil {
			fatalf("%v", err)
		}
		label = "scenario " + spec.Name
	}
	fmt.Printf("%s, mode %v, traffic %s, seed %d\n", label, mode, *trafficName, *seed)
	if len(net.Flows) <= 24 {
		for _, f := range net.Flows {
			fmt.Printf("  flow %d: node %d (%d ant) → node %d (%d ant), link SNR %.1f dB\n",
				f.ID, f.Tx, f.TxAntennas, f.Rx, f.RxAntennas, net.Deployment.LinkSNRDB(f.Tx, f.Rx))
		}
	}

	// Generated topologies and open-loop traffic run the event-driven
	// protocol; saturated hand-built scenarios keep the faster
	// epoch-based evaluation unless a trace was asked for.
	if *topoName != "" || *trafficName != traffic.Saturated || *trace {
		runProtocol(net, mode, *trafficName, *rate, *queueCap, *duration, *trace)
		return
	}

	res, err := net.RunEpochs(mode, *epochs)
	if err != nil {
		fatalf("%v", err)
	}
	t := &stats.Table{Header: []string{"flow", "Mb/s", "wins", "joins", "loss", "SNR loss dB"}}
	for _, id := range res.SortedFlowIDs() {
		s := res.PerFlow[id]
		t.AddRow(fmt.Sprint(id), stats.F(s.ThroughputMbps(res.Elapsed)),
			fmt.Sprint(s.Wins), fmt.Sprint(s.Joins),
			fmt.Sprintf("%.1f%%", 100*s.LossRate()),
			stats.F(res.SNRLossDB[id]))
	}
	fmt.Println()
	fmt.Print(t.String())
	fmt.Printf("\ntotal: %.2f Mb/s over %.2f s of medium time\n", res.TotalThroughputMbps(), res.Elapsed)
}

// runProtocol executes the event-driven MAC under the chosen traffic
// model and prints throughput, delay, drop, and fairness results.
func runProtocol(net *core.Network, mode mac.Mode, model string, rate float64, queueCap int, duration float64, trace bool) {
	perFlow, tr, err := net.RunTrafficProtocol(core.TrafficRun{
		Mode:     mode,
		Duration: duration,
		Model:    model,
		RatePPS:  rate,
		QueueCap: queueCap,
		Trace:    trace,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if trace {
		fmt.Println("\nMAC trace:")
		fmt.Print(tr.String())
	}

	ids := make([]int, 0, len(perFlow))
	for id := range perFlow {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var tputs, delays []float64
	var arrivals, drops, served, wins, joins int64
	for _, id := range ids {
		fs := perFlow[id]
		tputs = append(tputs, fs.ThroughputMbps(duration))
		delays = append(delays, fs.Delays...)
		arrivals += fs.Arrivals
		drops += fs.Drops
		served += fs.Served
		wins += fs.Wins
		joins += fs.Joins
	}

	openLoop := model != traffic.Saturated
	if len(ids) <= 24 {
		header := []string{"flow", "Mb/s", "wins", "joins"}
		if openLoop {
			header = append(header, "served", "drop%", "p95 ms")
		}
		t := &stats.Table{Header: header}
		for i, id := range ids {
			fs := perFlow[id]
			row := []string{fmt.Sprint(id), stats.F(tputs[i]), fmt.Sprint(fs.Wins), fmt.Sprint(fs.Joins)}
			if openLoop {
				row = append(row, fmt.Sprint(fs.Served),
					fmt.Sprintf("%.1f%%", 100*fs.DropRate()),
					stats.F(stats.SummarizeDelays(fs.Delays).P95*1e3))
			}
			t.AddRow(row...)
		}
		fmt.Println()
		fmt.Print(t.String())
	}

	total := 0.0
	for _, x := range tputs {
		total += x
	}
	fmt.Printf("\ntotal: %.2f Mb/s over %.2f s (%d flows, %d wins, %d joins)\n",
		total, duration, len(ids), wins, joins)
	fmt.Printf("Jain fairness: %.3f\n", stats.JainFairness(tputs))
	if openLoop {
		fmt.Printf("delay: %v\n", stats.SummarizeDelays(delays))
		if arrivals > 0 {
			fmt.Printf("packets: %d offered, %d served, %d dropped (%.1f%%)\n",
				arrivals, served, drops, 100*float64(drops)/float64(arrivals))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "npsim: "+format+"\n", args...)
	os.Exit(1)
}

// usagef reports a bad flag value (unknown registry name) with the
// usage exit code.
func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "npsim: "+format+"\n", args...)
	os.Exit(2)
}
