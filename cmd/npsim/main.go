// Command npsim runs one n+ deployment — a hand-built scenario from
// the core registry (the Fig. 3 trio, the Fig. 4 downlink) or a
// generated topology from the topo registry (uniform-disk / grid
// placement, ad-hoc or AP-uplink pairing, 50–500 nodes) — under a
// chosen MAC and traffic model, and reports structured per-flow
// results.
//
// Every run is described by a declarative runspec.Spec: either loaded
// from a JSON file with -spec, or assembled from the flags below.
// Flags given alongside -spec override the file field-for-field, and
// only flags the user actually passed apply — so `-seed 0` means seed
// zero, not "use the default". A knob the resolved configuration
// cannot consume (e.g. -rate under saturated traffic, -epochs with
// the event-driven protocol) is rejected, never silently dropped.
//
// With the default saturated traffic, scenarios use the fast
// epoch-based evaluation (the paper's §6.3 methodology) and -trace
// switches to the event-driven CSMA/CA protocol. Generated topologies
// and open-loop traffic models always run the event-driven protocol,
// which also reports per-packet delay percentiles, queue drops, and
// Jain's fairness.
//
// Observability (protocol engine): -events writes the typed event
// stream as JSONL, -metrics adds a metrics section to the report,
// -probe samples per-domain queue/in-flight/CW time series, and
// -pprof captures CPU+heap profiles plus a Go runtime/metrics
// snapshot. -trace -json embeds the rendered trace and the typed
// events it derives from in the JSON report. All of it is off by
// default and costs nothing when disabled.
//
// With -serve-url, the spec is not computed locally: npsim normalizes
// it, POSTs it to a running npserve, and prints the served Report —
// with -json, byte-identical to what the same spec produces locally,
// since the server runs the identical runspec path and memoizes by
// canonical-spec hash.
//
// Usage:
//
//	npsim -scenario trio -mode nplus -seed 4
//	npsim -spec examples/specs/uplink200.json -json
//	npsim -spec examples/specs/trio.json -mode 80211n
//	npsim -topo disk-uplink -nodes 200 -traffic poisson -rate 100
//	npsim -topo campus -nodes 1000 -clusters 8 -traffic poisson -rate 400
//	npsim -spec examples/specs/observe.json -events events.jsonl -metrics all
//	npsim -spec - -json < spec.json
//	npsim -spec examples/specs/uplink200.json -serve-url http://127.0.0.1:9070 -json
//	npsim -list
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"nplus/internal/assoc"
	"nplus/internal/core"
	"nplus/internal/mac"
	"nplus/internal/obs"
	"nplus/internal/runspec"
	"nplus/internal/testbed"
	"nplus/internal/topo"
	"nplus/internal/traffic"
)

func main() {
	scenarioNames := strings.Join(core.ScenarioNames(), ", ")
	topoNames := strings.Join(topo.Names(), ", ")
	trafficNames := strings.Join(traffic.Names(), ", ")
	modeNames := strings.Join(mac.ModeNames(), ", ")
	specPath := flag.String("spec", "", "declarative run spec (JSON file, or - for stdin); other flags override its fields")
	serveURL := flag.String("serve-url", "", "POST the spec to a running npserve at this base URL instead of computing locally (memoized server-side; -json output is byte-identical to a local run)")
	jsonOut := flag.Bool("json", false, "emit the structured Report as JSON instead of the text view")
	scenario := flag.String("scenario", runspec.DefaultScenario, "hand-built deployment, one of: "+scenarioNames)
	topoName := flag.String("topo", "", "generated deployment instead of -scenario, one of: "+topoNames)
	nodes := flag.Int("nodes", runspec.DefaultNodes, "generated topology size (with -topo)")
	clusters := flag.Int("clusters", runspec.DefaultClusters, "spatial cells for clustered topologies (campus, multiroom)")
	clusterLoss := flag.Float64("cluster-loss", 0, "inter-cluster attenuation in dB (clustered topologies; default: generator calibration)")
	csThreshold := flag.Float64("cs-threshold", testbed.DefaultCSThresholdDB, "carrier-sense hearing threshold in dB SNR (very low forces one collision domain)")
	trafficName := flag.String("traffic", traffic.Saturated, "arrival model, one of: "+trafficNames)
	rate := flag.Float64("rate", runspec.DefaultRatePPS, "mean per-flow arrival rate, packets/s (open-loop models)")
	queueCap := flag.Int("queue", runspec.DefaultQueueCap, "per-station packet queue bound (open-loop models)")
	modeName := flag.String("mode", runspec.DefaultMode, "MAC variant, one of: "+modeNames)
	engine := flag.String("engine", "", "execution engine: epoch, protocol (default: auto)")
	list := flag.Bool("list", false, "list registered scenarios, topologies, traffic models, and modes, then exit")
	seed := flag.Int64("seed", runspec.DefaultSeed, "placement seed")
	epochs := flag.Int("epochs", runspec.DefaultEpochs, "contention rounds (epoch engine)")
	trace := flag.Bool("trace", false, "run the event-driven protocol and print the MAC trace")
	duration := flag.Float64("duration", runspec.DefaultDuration, "virtual seconds (protocol engine)")
	workers := flag.Int("workers", 0, "worker pool for component-parallel protocol runs, 0 = all CPUs (results are identical at any value)")
	churnRate := flag.Float64("churn-rate", 0, "station arrival rate, stations/s — switches to a dynamic population (generated uplink topologies)")
	session := flag.Float64("session", 0, "mean station session length in virtual seconds (with -churn-rate)")
	mobility := flag.String("mobility", "", "station mobility model, one of: "+strings.Join(topo.MobilityNames(), ", "))
	speed := flag.Float64("speed", 0, "station speed in m/s (with -mobility)")
	moveInterval := flag.Float64("move-interval", 0, "position-update cadence in virtual seconds (with -mobility; 0 = 1 s)")
	assocPolicy := flag.String("assoc", "", "association policy for dynamic runs, one of: "+strings.Join(assoc.Names(), ", "))
	assocBias := flag.Float64("assoc-bias", 0, "biased-sinr bias in dB per AP antenna beyond the first (with -assoc biased-sinr)")
	eventsPath := flag.String("events", "", "write the typed protocol event stream to this file as JSONL (protocol engine)")
	metricsSel := flag.String("metrics", "", "comma-separated metrics for the report's metrics section, or \"all\" (protocol engine)")
	probe := flag.Float64("probe", 0, "time-series probe cadence in virtual seconds: per-domain queue depth, in-flight transmissions, CW distribution (protocol engine, 0 = off)")
	pprofPrefix := flag.String("pprof", "", "profile the run: <prefix>.cpu.pprof, <prefix>.heap.pprof, and a Go runtime/metrics snapshot <prefix>.runtime.json")
	flag.Parse()

	if *list {
		// Every section enumerates its registry: a newly registered
		// scenario, generator, or model shows up with no driver change.
		fmt.Println("scenarios:")
		for _, name := range core.ScenarioNames() {
			s, _ := core.ScenarioByName(name)
			fmt.Printf("  %-12s %s\n", s.Name, s.Description)
		}
		fmt.Println("topologies (generated):")
		for _, name := range topo.Names() {
			s, _ := topo.ByName(name)
			fmt.Printf("  %-12s %s\n", s.Name, s.Description)
		}
		fmt.Println("traffic models:")
		for _, name := range traffic.Names() {
			s, _ := traffic.ByName(name)
			fmt.Printf("  %-12s %s\n", s.Name, s.Description)
		}
		fmt.Println("modes:")
		for _, m := range mac.Modes() {
			fmt.Printf("  %-12s %s\n", m.CLIName(), m)
		}
		return
	}

	// set records which flags the user actually passed: only those
	// override the spec file, and an explicit zero (e.g. -seed 0)
	// stays explicit.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var spec runspec.Spec
	if *specPath != "" {
		var err error
		spec, err = runspec.LoadSpec(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
	}
	if set["scenario"] && set["topo"] {
		usagef("-scenario and -topo are mutually exclusive")
	}
	if set["scenario"] {
		spec.Scenario = *scenario
		spec.Topo = ""
	}
	if set["topo"] {
		spec.Topo = *topoName
		spec.Scenario = ""
	}
	if set["nodes"] {
		spec.Nodes = *nodes
	}
	if set["clusters"] {
		spec.Clusters = *clusters
	}
	if set["cluster-loss"] {
		spec.InterClusterLossDB = clusterLoss
	}
	if set["cs-threshold"] {
		if spec.Options == nil {
			spec.Options = &runspec.OptionsSpec{}
		}
		spec.Options.CSThresholdDB = csThreshold
	}
	if set["traffic"] {
		spec.Traffic = *trafficName
	}
	if set["rate"] {
		spec.RatePPS = *rate
	}
	if set["queue"] {
		spec.QueueCap = *queueCap
	}
	if set["mode"] {
		spec.Mode = *modeName
	}
	if set["engine"] {
		spec.Engine = *engine
	}
	if set["seed"] {
		spec.Seed = seed
	}
	if set["epochs"] {
		spec.Epochs = *epochs
	}
	if set["duration"] {
		spec.DurationS = *duration
	}
	if set["workers"] {
		spec.Workers = *workers
	}
	if set["churn-rate"] || set["session"] {
		if spec.Churn == nil {
			spec.Churn = &runspec.ChurnSpec{}
		}
		if set["churn-rate"] {
			spec.Churn.ArrivalPerS = *churnRate
		}
		if set["session"] {
			spec.Churn.MeanSessionS = *session
		}
	}
	if set["mobility"] || set["speed"] || set["move-interval"] {
		if spec.Mobility == nil {
			spec.Mobility = &runspec.MobilitySpec{}
		}
		if set["mobility"] {
			spec.Mobility.Model = *mobility
		}
		if set["speed"] {
			spec.Mobility.SpeedMPS = *speed
		}
		if set["move-interval"] {
			spec.Mobility.IntervalS = *moveInterval
		}
	}
	if set["assoc"] || set["assoc-bias"] {
		if spec.Association == nil {
			spec.Association = &runspec.AssociationSpec{}
		}
		if set["assoc"] {
			spec.Association.Policy = *assocPolicy
		}
		if set["assoc-bias"] {
			spec.Association.BiasDBPerAntenna = assocBias
		}
	}
	if set["events"] || set["metrics"] || set["probe"] {
		// Observe flags override the spec's observe block
		// field-for-field, exactly like every other knob.
		if spec.Observe == nil {
			spec.Observe = &runspec.ObserveSpec{}
		}
		if set["events"] {
			spec.Observe.Events = *eventsPath
		}
		if set["metrics"] {
			spec.Observe.Metrics = splitList(*metricsSel)
		}
		if set["probe"] {
			spec.Observe.ProbeIntervalS = *probe
		}
	}
	observing := spec.Observe != nil &&
		(spec.Observe.Events != "" || spec.Observe.ProbeIntervalS != 0 || len(spec.Observe.Metrics) > 0)
	if (*trace || observing) && spec.Engine == "" {
		// The MAC trace and the observability block only exist on the
		// event-driven path; an explicitly requested epoch engine is a
		// contradiction that normalization rejects rather than
		// silently overriding.
		spec.Engine = runspec.EngineProtocol
	}

	norm, err := spec.Normalized()
	if err != nil {
		usagef("%v", err)
	}
	if *trace && norm.Engine != runspec.EngineProtocol {
		usagef("-trace needs the protocol engine (spec pins engine %q)", norm.Engine)
	}

	if !*jsonOut {
		dep := "scenario " + norm.Scenario
		if norm.Topo != "" {
			dep = fmt.Sprintf("topology %s (%d nodes)", norm.Topo, norm.Nodes)
		}
		fmt.Printf("%s, mode %s, traffic %s, engine %s, seed %d\n",
			dep, norm.Mode, norm.Traffic, norm.Engine, norm.SeedValue())
	}

	if *serveURL != "" {
		// Client mode: the normalized spec is computed by a warm
		// npserve (memoized by canonical hash) instead of locally. The
		// server returns the exact bytes a local -json run prints, so
		// piped output stays byte-identical either way.
		if *trace {
			usagef("-trace needs a local run; -serve-url has no trace stream")
		}
		if *pprofPrefix != "" {
			usagef("-pprof profiles a local run; it cannot profile the server")
		}
		if norm.Observe != nil && norm.Observe.Events != "" {
			usagef("-events writes a local file; the server rejects server-side event paths")
		}
		rep, body := runRemote(*serveURL, norm)
		if *jsonOut {
			os.Stdout.Write(body)
			return
		}
		printHuman(rep)
		return
	}

	var prof *obs.Profile
	if *pprofPrefix != "" {
		prof, err = obs.StartProfile(*pprofPrefix)
		if err != nil {
			fatalf("%v", err)
		}
	}
	rep, tr, err := runspec.RunTraced(norm, *trace)
	if prof != nil {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonOut {
		data, err := rep.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(data))
		return
	}
	if *trace && tr != nil {
		fmt.Println("\nMAC trace:")
		fmt.Print(tr.String())
	}
	printHuman(rep)
}

// printHuman writes the flow list and rendered report — the shared
// text view for local and served runs.
func printHuman(rep *runspec.Report) {
	if len(rep.Flows) <= 24 {
		for _, f := range rep.Flows {
			fmt.Printf("  flow %d: node %d (%d ant) → node %d (%d ant), link SNR %.1f dB\n",
				f.ID, f.Tx, f.TxAntennas, f.Rx, f.RxAntennas, f.LinkSNRDB)
		}
	}
	fmt.Println()
	fmt.Print(rep.Render())
}

// runRemote POSTs the normalized spec to an npserve /run endpoint and
// returns the decoded Report along with the server's exact response
// bytes.
func runRemote(baseURL string, n runspec.Spec) (*runspec.Report, []byte) {
	body, err := json.Marshal(n)
	if err != nil {
		fatalf("%v", err)
	}
	url := strings.TrimRight(baseURL, "/") + "/run"
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("server %s: %s: %s", url, resp.Status, strings.TrimSpace(string(data)))
	}
	var rep runspec.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatalf("decode server report: %v", err)
	}
	return &rep, data
}

// splitList parses a comma-separated flag value, dropping empty
// elements so "-metrics wins," and "-metrics ”" behave sensibly.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "npsim: "+format+"\n", args...)
	os.Exit(1)
}

// usagef reports a bad flag or spec combination with the usage exit
// code.
func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "npsim: "+format+"\n", args...)
	os.Exit(2)
}
