// Command npsim runs one n+ scenario — any deployment in the core
// scenario registry, e.g. the heterogeneous trio of Fig. 3 or the
// downlink of Fig. 4 — under a chosen MAC and prints per-flow
// throughput. With -trace it runs the full event-driven CSMA/CA
// protocol and prints the medium-access trace (the Fig. 5 behavior);
// otherwise it uses the faster epoch-based evaluation.
//
// Usage:
//
//	npsim -scenario trio -mode nplus -seed 4
//	npsim -scenario downlink -mode beamforming
//	npsim -scenario trio -trace -duration 0.05
//	npsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nplus/internal/core"
	"nplus/internal/mac"
	"nplus/internal/stats"
)

func main() {
	scenarioNames := strings.Join(core.ScenarioNames(), ", ")
	modeNames := strings.Join(mac.ModeNames(), ", ")
	scenario := flag.String("scenario", "trio", "deployment to run, one of: "+scenarioNames)
	modeName := flag.String("mode", "nplus", "MAC variant, one of: "+modeNames)
	list := flag.Bool("list", false, "list registered scenarios and modes, then exit")
	seed := flag.Int64("seed", 4, "placement seed")
	epochs := flag.Int("epochs", 200, "contention rounds (epoch mode)")
	trace := flag.Bool("trace", false, "run the event-driven protocol and print the MAC trace")
	duration := flag.Float64("duration", 0.1, "virtual seconds (trace mode)")
	flag.Parse()

	if *list {
		fmt.Println("scenarios:")
		for _, name := range core.ScenarioNames() {
			s, _ := core.ScenarioByName(name)
			fmt.Printf("  %-10s %s\n", s.Name, s.Description)
		}
		fmt.Println("modes:")
		for _, m := range mac.Modes() {
			fmt.Printf("  %-12s %s\n", m.CLIName(), m)
		}
		return
	}

	spec, ok := core.ScenarioByName(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "npsim: unknown scenario %q (have: %s)\n", *scenario, scenarioNames)
		os.Exit(2)
	}
	nodes, links := spec.Build()
	mode, err := mac.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npsim: %v\n", err)
		os.Exit(2)
	}

	net, err := core.NewNetwork(*seed, nodes, links, core.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "npsim:", err)
		os.Exit(1)
	}
	fmt.Printf("scenario %s, mode %v, seed %d\n", spec.Name, mode, *seed)
	for _, f := range net.Flows {
		fmt.Printf("  flow %d: node %d (%d ant) → node %d (%d ant), link SNR %.1f dB\n",
			f.ID, f.Tx, f.TxAntennas, f.Rx, f.RxAntennas, net.Deployment.LinkSNRDB(f.Tx, f.Rx))
	}

	if *trace {
		tput, tr, err := net.RunProtocol(mode, *duration)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npsim:", err)
			os.Exit(1)
		}
		fmt.Println("\nMAC trace:")
		fmt.Print(tr.String())
		fmt.Println("\nthroughput (event-driven protocol):")
		for _, f := range net.Flows {
			fmt.Printf("  flow %d: %.2f Mb/s\n", f.ID, tput[f.ID])
		}
		return
	}

	res, err := net.RunEpochs(mode, *epochs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npsim:", err)
		os.Exit(1)
	}
	t := &stats.Table{Header: []string{"flow", "Mb/s", "wins", "joins", "loss", "SNR loss dB"}}
	for _, id := range res.SortedFlowIDs() {
		s := res.PerFlow[id]
		t.AddRow(fmt.Sprint(id), stats.F(s.ThroughputMbps(res.Elapsed)),
			fmt.Sprint(s.Wins), fmt.Sprint(s.Joins),
			fmt.Sprintf("%.1f%%", 100*s.LossRate()),
			stats.F(res.SNRLossDB[id]))
	}
	fmt.Println()
	fmt.Print(t.String())
	fmt.Printf("\ntotal: %.2f Mb/s over %.2f s of medium time\n", res.TotalThroughputMbps(), res.Elapsed)
}
