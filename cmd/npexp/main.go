// Command npexp regenerates the paper's evaluation figures through
// the parallel experiment engine. Experiments are enumerated from the
// exp registry, so a newly registered experiment shows up here with
// no driver changes.
//
// Usage:
//
//	npexp -exp fig9             # carrier sense (Fig. 9a/9b)
//	npexp -exp fig12 -workers 8 # trio throughput CDFs on 8 workers
//	npexp -exp all              # everything registered
//	npexp -list                 # names and descriptions
//
// -placements / -epochs / -trials / -seed scale the experiments (each
// experiment applies the knobs it understands); the defaults
// reproduce the paper's shapes in a couple of minutes. Results are
// bit-identical at any -workers value: trial i always derives its RNG
// from hash(seed, i).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	_ "nplus/internal/core" // registers the paper's experiments
	"nplus/internal/exp"
)

func main() {
	names := strings.Join(exp.Names(), ", ")
	expName := flag.String("exp", "all", "experiment to run: all, or one of: "+names)
	fig := flag.String("fig", "", "deprecated alias for -exp (accepts 9 for fig9, etc.)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	workers := flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS)")
	placements := flag.Int("placements", 0, "random placements (0 = default per experiment)")
	epochs := flag.Int("epochs", 0, "contention rounds per placement (0 = default)")
	trials := flag.Int("trials", 0, "trials for fig9 / overhead (0 = default)")
	seed := flag.Int64("seed", 0, "base seed (0 = default)")
	topoName := flag.String("topo", "", "topology generator for workload experiments (empty = default)")
	trafficName := flag.String("traffic", "", "traffic model for workload experiments (empty = default)")
	nodes := flag.Int("nodes", 0, "generated topology size (0 = default)")
	duration := flag.Float64("duration", 0, "virtual seconds per protocol run (0 = default)")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.Name(), e.Description())
		}
		return
	}

	name := *expName
	if *fig != "" {
		if *expName != "all" {
			fmt.Fprintln(os.Stderr, "npexp: -fig and -exp are mutually exclusive (use -exp)")
			os.Exit(2)
		}
		name = *fig
	}
	// Accept the historical bare figure numbers ("-fig 9").
	if _, ok := exp.Get(name); !ok && name != "all" {
		if _, ok := exp.Get("fig" + name); ok {
			name = "fig" + name
		}
	}

	var selected []exp.Experiment
	if name == "all" {
		selected = exp.All()
	} else {
		e, ok := exp.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "npexp: unknown experiment %q (have: all, %s)\n", name, names)
			os.Exit(2)
		}
		selected = []exp.Experiment{e}
	}

	o := exp.Overrides{
		Trials: *trials, Placements: *placements, Epochs: *epochs, Seed: *seed,
		Topo: *topoName, Traffic: *trafficName, Nodes: *nodes, Duration: *duration,
	}
	runner := &exp.Runner{Workers: *workers}
	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n", e.Name(), e.Description())
		cfg := e.DefaultConfig()
		if c, ok := cfg.(exp.Configurable); ok {
			cfg = c.WithOverrides(o)
		}
		res, err := runner.Run(e, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npexp: %s: %v\n", e.Name(), err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
}
