// Command npexp regenerates the paper's evaluation figures through
// the parallel experiment engine, and runs declarative runspec sweeps
// as batch jobs. Experiments are enumerated from the exp registry, so
// a newly registered experiment shows up here with no driver changes.
//
// Usage:
//
//	npexp -exp fig9             # carrier sense (Fig. 9a/9b)
//	npexp -exp fig12 -workers 8 # trio throughput CDFs on 8 workers
//	npexp -exp all              # everything registered
//	npexp -exp delayload -json  # structured result as JSON
//	npexp -spec sweep.json -json  # runspec grid → one Report per line (JSONL)
//	npexp -list                 # names and descriptions
//
// With -spec, the shared knobs (-seed, -topo, -traffic, -nodes,
// -duration, -epochs) plus the spatial knobs (-clusters,
// -cluster-loss, -cs-threshold) and the observability knobs (-events,
// -metrics, -probe) override the sweep's base spec field-for-field
// when explicitly passed; -trials/-placements have no spec
// counterpart and are rejected. The spatial and observability knobs
// exist only on the spec path — registry experiments reject them.
// -events needs a single-point sweep (each point would clobber the
// same file); -metrics adds a metrics section to every point's
// Report. -pprof profiles either path: <prefix>.cpu.pprof,
// <prefix>.heap.pprof, and a runtime/metrics snapshot
// <prefix>.runtime.json.
//
// -placements / -epochs / -trials / -seed scale the experiments (each
// experiment applies the knobs it understands); the defaults
// reproduce the paper's shapes in a couple of minutes. Only flags the
// user actually passed are applied, so an explicit -seed 0 really
// runs seed 0. Results are bit-identical at any -workers value: trial
// i always derives its RNG from hash(seed, i).
//
// -workers sizes the pool of *trials*; inside each protocol-engine
// run, the spec's own "workers" field independently parallelizes the
// hearing graph's collision-domain components with the same
// guarantee — component c derives its RNG from hash(seed, c), so a
// run's Report is byte-identical at any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	_ "nplus/internal/core" // registers the paper's experiments
	"nplus/internal/exp"
	"nplus/internal/obs"
	"nplus/internal/runspec"
)

func main() {
	names := strings.Join(exp.Names(), ", ")
	expName := flag.String("exp", "all", "experiment to run: all, or one of: "+names)
	fig := flag.String("fig", "", "deprecated alias for -exp (accepts 9 for fig9, etc.)")
	specPath := flag.String("spec", "", "runspec file (single spec or sweep, or - for stdin): run it through the parallel engine")
	jsonOut := flag.Bool("json", false, "emit structured results as JSON (JSONL for -spec sweeps)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	workers := flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS)")
	placements := flag.Int("placements", 0, "random placements (0 = default per experiment)")
	epochs := flag.Int("epochs", 0, "contention rounds per placement (0 = default)")
	trials := flag.Int("trials", 0, "trials for fig9 / overhead (0 = default)")
	seed := flag.Int64("seed", 0, "base seed (0 = default unless passed explicitly)")
	topoName := flag.String("topo", "", "topology generator for workload experiments (empty = default)")
	trafficName := flag.String("traffic", "", "traffic model for workload experiments (empty = default)")
	nodes := flag.Int("nodes", 0, "generated topology size (0 = default)")
	duration := flag.Float64("duration", 0, "virtual seconds per protocol run (0 = default)")
	clusters := flag.Int("clusters", 0, "spatial cells for clustered topologies (sweep base override)")
	clusterLoss := flag.Float64("cluster-loss", 0, "inter-cluster attenuation in dB (sweep base override)")
	csThreshold := flag.Float64("cs-threshold", 0, "carrier-sense hearing threshold in dB SNR (sweep base override)")
	churnRate := flag.Float64("churn-rate", 0, "station arrival rate, stations/s (sweep base override; dynamic population)")
	session := flag.Float64("session", 0, "mean station session length in virtual seconds (sweep base override)")
	mobility := flag.String("mobility", "", "station mobility model (sweep base override)")
	speed := flag.Float64("speed", 0, "station speed in m/s (sweep base override)")
	assocPolicy := flag.String("assoc", "", "association policy for dynamic runs (sweep base override)")
	eventsPath := flag.String("events", "", "write the typed event stream as JSONL (single-point -spec runs only)")
	metricsSel := flag.String("metrics", "", "comma-separated metrics for each report's metrics section, or \"all\" (sweep base override)")
	probe := flag.Float64("probe", 0, "time-series probe cadence in virtual seconds (sweep base override, 0 = off)")
	pprofPrefix := flag.String("pprof", "", "profile the run: <prefix>.cpu.pprof, <prefix>.heap.pprof, and a Go runtime/metrics snapshot <prefix>.runtime.json")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.Name(), e.Description())
		}
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *specPath != "" {
		if set["exp"] || set["fig"] {
			fmt.Fprintln(os.Stderr, "npexp: -spec and -exp/-fig are mutually exclusive")
			os.Exit(2)
		}
		// Registry-experiment knobs have no spec-field counterpart;
		// reject them rather than silently dropping them.
		if set["trials"] || set["placements"] {
			fmt.Fprintln(os.Stderr, "npexp: -trials/-placements are registry-experiment knobs; a sweep's size is its grid")
			os.Exit(2)
		}
		sw, err := runspec.LoadSweep(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npexp: %v\n", err)
			os.Exit(1)
		}
		// Explicitly-passed flags override the base spec
		// field-for-field, exactly as npsim treats its spec file.
		if set["topo"] {
			sw.Base.Topo = *topoName
			sw.Base.Scenario = ""
		}
		if set["traffic"] {
			sw.Base.Traffic = *trafficName
		}
		if set["nodes"] {
			sw.Base.Nodes = *nodes
		}
		if set["duration"] {
			sw.Base.DurationS = *duration
		}
		if set["epochs"] {
			sw.Base.Epochs = *epochs
		}
		if set["seed"] {
			sw.Base.Seed = seed
		}
		if set["clusters"] {
			sw.Base.Clusters = *clusters
		}
		if set["cluster-loss"] {
			sw.Base.InterClusterLossDB = clusterLoss
		}
		if set["cs-threshold"] {
			if sw.Base.Options == nil {
				sw.Base.Options = &runspec.OptionsSpec{}
			}
			sw.Base.Options.CSThresholdDB = csThreshold
		}
		if set["churn-rate"] || set["session"] {
			if sw.Base.Churn == nil {
				sw.Base.Churn = &runspec.ChurnSpec{}
			}
			if set["churn-rate"] {
				sw.Base.Churn.ArrivalPerS = *churnRate
			}
			if set["session"] {
				sw.Base.Churn.MeanSessionS = *session
			}
		}
		if set["mobility"] || set["speed"] {
			if sw.Base.Mobility == nil {
				sw.Base.Mobility = &runspec.MobilitySpec{}
			}
			if set["mobility"] {
				sw.Base.Mobility.Model = *mobility
			}
			if set["speed"] {
				sw.Base.Mobility.SpeedMPS = *speed
			}
		}
		if set["assoc"] {
			if sw.Base.Association == nil {
				sw.Base.Association = &runspec.AssociationSpec{}
			}
			sw.Base.Association.Policy = *assocPolicy
		}
		if set["events"] || set["metrics"] || set["probe"] {
			// Observe flags override the base spec's observe block
			// field-for-field, exactly as npsim treats them. Sweep
			// expansion rejects an events path on a multi-point grid.
			if sw.Base.Observe == nil {
				sw.Base.Observe = &runspec.ObserveSpec{}
			}
			if set["events"] {
				sw.Base.Observe.Events = *eventsPath
			}
			if set["metrics"] {
				sw.Base.Observe.Metrics = splitList(*metricsSel)
			}
			if set["probe"] {
				sw.Base.Observe.ProbeIntervalS = *probe
			}
		}
		if o := sw.Base.Observe; o != nil && sw.Base.Engine == "" &&
			(o.Events != "" || o.ProbeIntervalS != 0 || len(o.Metrics) > 0) {
			// The observability block only exists on the event-driven
			// path; auto-select it exactly as npsim does for -trace. An
			// explicitly pinned epoch engine still gets normalization's
			// contradiction error.
			sw.Base.Engine = runspec.EngineProtocol
		}
		prof := startProfile(*pprofPrefix)
		runSweep(sw, *workers, *jsonOut)
		stopProfile(prof)
		return
	}

	if set["clusters"] || set["cluster-loss"] || set["cs-threshold"] {
		// Spec-only knobs: the registry experiments would silently
		// ignore them, so reject instead.
		fmt.Fprintln(os.Stderr, "npexp: -clusters/-cluster-loss/-cs-threshold apply to -spec runs only")
		os.Exit(2)
	}
	if set["events"] || set["metrics"] || set["probe"] {
		// The observability block lives on the protocol engine's spec
		// path; registry experiments have no event stream to tap.
		fmt.Fprintln(os.Stderr, "npexp: -events/-metrics/-probe apply to -spec runs only")
		os.Exit(2)
	}
	if set["churn-rate"] || set["session"] || set["mobility"] || set["speed"] || set["assoc"] {
		// Dynamic-population knobs are spec fields; the registry
		// experiments run fixed populations.
		fmt.Fprintln(os.Stderr, "npexp: -churn-rate/-session/-mobility/-speed/-assoc apply to -spec runs only")
		os.Exit(2)
	}

	name := *expName
	if *fig != "" {
		if *expName != "all" {
			fmt.Fprintln(os.Stderr, "npexp: -fig and -exp are mutually exclusive (use -exp)")
			os.Exit(2)
		}
		name = *fig
	}
	// Accept the historical bare figure numbers ("-fig 9").
	if _, ok := exp.Get(name); !ok && name != "all" {
		if _, ok := exp.Get("fig" + name); ok {
			name = "fig" + name
		}
	}

	var selected []exp.Experiment
	if name == "all" {
		selected = exp.All()
	} else {
		e, ok := exp.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "npexp: unknown experiment %q (have: all, %s)\n", name, names)
			os.Exit(2)
		}
		selected = []exp.Experiment{e}
	}

	// flag.Visit marks explicitly-passed knobs so zero values apply:
	// the old nonzero convention made -seed 0 inexpressible.
	o := exp.Overrides{
		Trials: *trials, Placements: *placements, Epochs: *epochs, Seed: *seed,
		Topo: *topoName, Traffic: *trafficName, Nodes: *nodes, Duration: *duration,
		Set: exp.OverrideSet{
			Trials: set["trials"], Placements: set["placements"], Epochs: set["epochs"],
			Seed: set["seed"], Topo: set["topo"], Traffic: set["traffic"],
			Nodes: set["nodes"], Duration: set["duration"],
		},
	}
	runner := &exp.Runner{Workers: *workers}
	prof := startProfile(*pprofPrefix)
	defer stopProfile(prof)
	for _, e := range selected {
		if !*jsonOut {
			fmt.Printf("==== %s: %s ====\n", e.Name(), e.Description())
		}
		cfg := e.DefaultConfig()
		if c, ok := cfg.(exp.Configurable); ok {
			cfg = c.WithOverrides(o)
		}
		res, err := runner.Run(e, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "npexp: %s: %v\n", e.Name(), err)
			os.Exit(1)
		}
		if *jsonOut {
			// The structured payload of every registered experiment:
			// results are plain structs (CDFs serialize as summaries),
			// one envelope object per experiment.
			data, err := json.MarshalIndent(map[string]any{
				"experiment": e.Name(),
				"result":     res,
			}, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "npexp: %s: marshal: %v\n", e.Name(), err)
				os.Exit(1)
			}
			fmt.Println(string(data))
			continue
		}
		fmt.Println(res.Render())
	}
}

// startProfile begins CPU profiling when a -pprof prefix was given.
func startProfile(prefix string) *obs.Profile {
	if prefix == "" {
		return nil
	}
	prof, err := obs.StartProfile(prefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npexp: %v\n", err)
		os.Exit(1)
	}
	return prof
}

// stopProfile flushes the CPU profile and writes the heap profile and
// runtime/metrics snapshot.
func stopProfile(prof *obs.Profile) {
	if prof == nil {
		return
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "npexp: %v\n", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empty
// elements so "-metrics wins," and "-metrics ”" behave sensibly.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runSweep executes a declarative sweep through the parallel runner:
// JSONL (one Report per line) with -json, the summary table
// otherwise.
func runSweep(sw runspec.Sweep, workers int, jsonOut bool) {
	res, err := runspec.RunSweep(sw, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "npexp: %v\n", err)
		os.Exit(1)
	}
	if jsonOut {
		if err := res.WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "npexp: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(res.Render())
}
