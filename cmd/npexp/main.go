// Command npexp regenerates the paper's evaluation figures.
//
// Usage:
//
//	npexp -fig 9            # carrier sense (Fig. 9a/9b)
//	npexp -fig 11           # nulling/alignment residuals (Fig. 11a/11b)
//	npexp -fig 12           # trio throughput CDFs (Fig. 12a–d)
//	npexp -fig 13           # downlink gains vs 802.11n and beamforming
//	npexp -fig overhead     # §3.5 handshake overhead
//	npexp -fig all          # everything
//
// -placements / -epochs / -trials / -seed scale the experiments; the
// defaults reproduce the paper's shapes in a couple of minutes.
package main

import (
	"flag"
	"fmt"
	"os"

	"nplus/internal/core"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 9, 11, 12, 13, overhead, all")
	placements := flag.Int("placements", 0, "random placements (0 = default per figure)")
	epochs := flag.Int("epochs", 0, "contention rounds per placement (0 = default)")
	trials := flag.Int("trials", 0, "trials for Fig 9 / overhead (0 = default)")
	seed := flag.Int64("seed", 0, "base seed (0 = default)")
	flag.Parse()

	run := func(name string, f func() (fmt.Stringer, error)) {
		fmt.Printf("==== %s ====\n", name)
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "npexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("9") {
		run("Figure 9: multi-dimensional carrier sense", func() (fmt.Stringer, error) {
			cfg := core.DefaultFig9Config()
			if *trials > 0 {
				cfg.Trials = *trials
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			r, err := core.RunFig9(cfg)
			return render{r}, err
		})
	}
	if want("11") {
		run("Figure 11: nulling and alignment residuals", func() (fmt.Stringer, error) {
			cfg := core.DefaultFig11Config()
			if *placements > 0 {
				cfg.Placements = *placements
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			r, err := core.RunFig11(cfg)
			return render{r}, err
		})
	}
	if want("12") {
		run("Figure 12: trio throughput, n+ vs 802.11n", func() (fmt.Stringer, error) {
			cfg := core.DefaultFig12Config()
			if *placements > 0 {
				cfg.Placements = *placements
			}
			if *epochs > 0 {
				cfg.Epochs = *epochs
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			r, err := core.RunFig12(cfg)
			return render{r}, err
		})
	}
	if want("13") {
		run("Figure 13: downlink gains vs 802.11n and beamforming", func() (fmt.Stringer, error) {
			cfg := core.DefaultFig13Config()
			if *placements > 0 {
				cfg.Placements = *placements
			}
			if *epochs > 0 {
				cfg.Epochs = *epochs
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			r, err := core.RunFig13(cfg)
			return render{r}, err
		})
	}
	if want("overhead") {
		run("Section 3.5: light-weight handshake overhead", func() (fmt.Stringer, error) {
			cfg := core.DefaultOverheadConfig()
			if *trials > 0 {
				cfg.Trials = *trials
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			r, err := core.RunOverhead(cfg)
			return render{r}, err
		})
	}
}

// render adapts the Render() convention to fmt.Stringer.
type render struct{ r interface{ Render() string } }

func (x render) String() string {
	if x.r == nil {
		return ""
	}
	return x.r.Render()
}
