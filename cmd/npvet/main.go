// Command npvet is the simulator's determinism vetter: a multichecker
// that runs the project-specific analyzers in internal/analysis over
// Go packages and exits non-zero on any finding. CI runs it as a
// tier-1 gate (`go run ./cmd/npvet ./...`), turning the repo's
// determinism conventions — sort after every map range, virtual time
// only, knob.IsAuto never == knob.Auto, sim.DeriveSeed never raw seed
// arithmetic, obs emission behind the nil-observer fast path — into
// machine-checked law.
//
// Usage:
//
//	npvet [packages]
//
// Packages default to ./... and accept any `go list` pattern. A
// finding is suppressed by a directive on its line or the line above:
//
//	//npvet:allow <analyzer>(<reason>)
//
// The reason is mandatory; malformed directives are findings
// themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nplus/internal/analysis"
	"nplus/internal/analysis/detrange"
	"nplus/internal/analysis/emitguard"
	"nplus/internal/analysis/knobsentinel"
	"nplus/internal/analysis/seedderive"
	"nplus/internal/analysis/wallclock"
)

// suite is every analyzer npvet runs, in diagnostic-name order.
var suite = []*analysis.Analyzer{
	detrange.Analyzer,
	emitguard.Analyzer,
	knobsentinel.Analyzer,
	seedderive.Analyzer,
	wallclock.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: npvet [packages]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := vet(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "npvet:", err)
		os.Exit(2)
	}
}

func vet(patterns []string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadPackages(patterns...)
	if err != nil {
		return err
	}
	bad := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Check(pkg, suite)
		if err != nil {
			return err
		}
		for _, f := range findings {
			name := f.Pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d finding(s) across %d package(s)", bad, len(pkgs))
	}
	return nil
}
